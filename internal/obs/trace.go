package obs

// Per-event span tracing: the attribution layer behind the SLO work.
//
// A Tracer owns a fixed-size ring of span records. Producers claim a slot
// with one atomic CAS (Begin), stamp stage boundaries into it as the event
// moves through the pipeline (Mark), and seal it (End). Every slot carries
// a seqlock-style state word — generation<<1 | busy — so a wrapped ring
// never corrupts a record: a stale SpanRef's CAS simply fails and the ref
// goes dead. All access to a record happens while holding the slot's busy
// bit, so readers (Snapshot) and writers exclude each other without any
// mutex and the whole hot path allocates nothing.
//
// The stage model makes attribution exact by construction: Mark(stage)
// charges the time since the previous Mark to that stage, so the per-stage
// durations of a finished span sum to its Total (End charges the tail the
// same way). Stages may repeat — durations accumulate — which lets a
// batched pipeline charge "waiting on batch peers" both before and after
// an event's own work. Attr buckets are additive side-channels (e.g. rank
// evaluation time inside the re-optimization stage) and deliberately do
// not participate in the partition.
//
// Same discipline as the metrics registry: zero dependencies, and the
// disabled path (nil *Tracer, or a dead SpanRef) is a couple of nil checks
// — no allocations, no atomics.

import (
	"sort"
	"sync/atomic"
	"time"
)

// MaxTraceStages bounds the per-span stage and attribution arrays; records
// stay fixed-size so slots never allocate.
const MaxTraceStages = 12

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Ring is the number of span slots, rounded up to a power of two.
	// Zero means DefaultTraceRing.
	Ring int
	// Sample records one in every Sample eligible events: 0 disables
	// recording entirely, 1 records everything, N>1 records 1-in-N.
	// Adjustable later via SetSample.
	Sample int
	// Stages names the pipeline stages, indexed by the stage constants the
	// instrumented subsystem defines. At most MaxTraceStages.
	Stages []string
	// Attrs names the additive attribution buckets. At most MaxTraceStages.
	Attrs []string
	// Now replaces time.Now for deterministic replay. Nil means time.Now.
	Now func() time.Time
}

// DefaultTraceRing is the default span-slot count.
const DefaultTraceRing = 4096

// SpanRecord is one traced event as stored in the ring. Stages holds the
// Mark-partitioned durations (their sum equals Total for a finished span);
// Attrs/Counts hold the additive attribution buckets.
type SpanRecord struct {
	ID     uint64
	Kind   string
	Key    string
	Start  time.Time
	Total  time.Duration
	Done   bool
	Stages [MaxTraceStages]time.Duration
	Attrs  [MaxTraceStages]time.Duration
	Counts [MaxTraceStages]uint64

	last time.Duration // elapsed-at-previous-Mark; internal partition cursor
}

// traceSlot pairs a record with its seqlock word: state = gen<<1 | busy.
// Any party holding the busy bit (set by a successful CAS from the even
// value) has exclusive access to rec.
type traceSlot struct {
	state atomic.Uint64
	rec   SpanRecord
}

// Tracer records spans into a fixed ring. All methods are safe for
// concurrent use and nil-receiver-safe, so call sites need no guards.
type Tracer struct {
	slots  []traceSlot
	mask   uint64
	stages []string
	attrs  []string
	nowFn  func() time.Time

	sample  atomic.Int64
	seq     atomic.Uint64 // sampling sequence
	cursor  atomic.Uint64 // next slot claim index (= next span ID)
	started atomic.Uint64 // spans actually begun
	dropped atomic.Uint64 // claims abandoned because every tried slot was busy
}

// NewTracer builds a tracer. It panics when more than MaxTraceStages stage
// or attribution names are given — a configuration bug, caught at startup
// like the registry's name validation.
func NewTracer(opts TracerOptions) *Tracer {
	if len(opts.Stages) > MaxTraceStages {
		panic("obs: too many trace stages")
	}
	if len(opts.Attrs) > MaxTraceStages {
		panic("obs: too many trace attrs")
	}
	ring := opts.Ring
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	size := 1
	for size < ring {
		size <<= 1
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracer{
		slots:  make([]traceSlot, size),
		mask:   uint64(size - 1),
		stages: append([]string(nil), opts.Stages...),
		attrs:  append([]string(nil), opts.Attrs...),
		nowFn:  now,
	}
	t.sample.Store(int64(opts.Sample))
	return t
}

// SetSample changes the sampling rate: 0 off, 1 everything, N>1 one-in-N.
func (t *Tracer) SetSample(n int) {
	if t != nil {
		t.sample.Store(int64(n))
	}
}

// Sample returns the current sampling rate.
func (t *Tracer) Sample() int {
	if t == nil {
		return 0
	}
	return int(t.sample.Load())
}

// Now returns the tracer's clock reading (time.Now unless injected); on a
// nil tracer it falls back to time.Now so attribution code needs no guard.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Now()
	}
	return t.nowFn()
}

// Stages returns the configured stage names.
func (t *Tracer) Stages() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.stages...)
}

// Attrs returns the configured attribution names.
func (t *Tracer) Attrs() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.attrs...)
}

// Started returns how many spans were begun; Dropped how many claims were
// abandoned because every tried slot was mid-write (vanishingly rare: the
// busy window is a few stores).
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// SpanRef is a value handle onto a live span. The zero value (and any ref
// whose slot has been reclaimed by ring wrap-around) is dead: every method
// is a cheap no-op on it. Refs are not goroutine-safe individually, but
// distinct refs may be used concurrently.
type SpanRef struct {
	t    *Tracer
	slot *traceSlot
	gen  uint64
}

// Begin claims a span. kind/key label it (both may be interned strings —
// Begin never copies or allocates). origin is the span's start instant;
// zero means now. A dead ref is returned when tracing is off or the event
// lost the sampling draw.
func (t *Tracer) Begin(kind, key string, origin time.Time) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	n := t.sample.Load()
	if n <= 0 {
		return SpanRef{}
	}
	if n > 1 && t.seq.Add(1)%uint64(n) != 0 {
		return SpanRef{}
	}
	if origin.IsZero() {
		origin = t.nowFn()
	}
	for attempt := 0; attempt < 4; attempt++ {
		gen := t.cursor.Add(1) - 1
		slot := &t.slots[gen&t.mask]
		old := slot.state.Load()
		if old&1 == 1 {
			continue // mid-write by a stale owner or a reader; take the next slot
		}
		if !slot.state.CompareAndSwap(old, gen<<1|1) {
			continue
		}
		slot.rec = SpanRecord{ID: gen, Kind: kind, Key: key, Start: origin}
		slot.state.Store(gen << 1)
		t.started.Add(1)
		return SpanRef{t: t, slot: slot, gen: gen}
	}
	t.dropped.Add(1)
	return SpanRef{}
}

// Active reports whether the ref still points at a live span; callers use
// it to skip building attribution inputs when nobody is listening.
func (r *SpanRef) Active() bool { return r.t != nil }

// acquire takes the slot's busy bit for this ref's generation. A nil
// return means the ref is dead (never live, slot reclaimed by wrap-around,
// or pathologically contended) — the ref is killed so later calls are
// single nil checks.
func (r *SpanRef) acquire() *SpanRecord {
	if r.t == nil {
		return nil
	}
	want := r.gen << 1
	for i := 0; ; i++ {
		if r.slot.state.CompareAndSwap(want, want|1) {
			return &r.slot.rec
		}
		if cur := r.slot.state.Load(); cur>>1 != r.gen || i >= 8 {
			r.t = nil
			return nil
		}
		// Same generation, briefly busy (a Snapshot reader): spin.
	}
}

func (r *SpanRef) release() { r.slot.state.Store(r.gen << 1) }

// Mark charges the time since the previous Mark (or Begin) to stage. Out
// of range stages are dropped without advancing the partition cursor.
func (r *SpanRef) Mark(stage int) {
	rec := r.acquire()
	if rec == nil {
		return
	}
	el := r.t.nowFn().Sub(rec.Start)
	if stage >= 0 && stage < MaxTraceStages {
		rec.Stages[stage] += el - rec.last
		rec.last = el
	}
	r.release()
}

// Attr adds d and n into attribution bucket attr. Attribution is additive
// and outside the stage partition: it answers "of the reopt stage, how
// much was rank evaluation", not "where did the wall time go".
func (r *SpanRef) Attr(attr int, d time.Duration, n uint64) {
	rec := r.acquire()
	if rec == nil {
		return
	}
	if attr >= 0 && attr < MaxTraceStages {
		rec.Attrs[attr] += d
		rec.Counts[attr] += n
	}
	r.release()
}

// End charges the tail to no stage, seals the span (Total, Done) and kills
// the ref.
func (r *SpanRef) End() {
	rec := r.acquire()
	if rec == nil {
		return
	}
	rec.Total = r.t.nowFn().Sub(rec.Start)
	rec.Done = true
	r.release()
	r.t = nil
}

// MarkEnd charges time-since-last-mark to stage and seals the span with the
// same clock reading, so the stage partition sums to Total exactly even on
// a real clock (separate Mark+End calls can drift by the nanoseconds
// between their two reads).
func (r *SpanRef) MarkEnd(stage int) {
	rec := r.acquire()
	if rec == nil {
		return
	}
	el := r.t.nowFn().Sub(rec.Start)
	if stage >= 0 && stage < MaxTraceStages {
		rec.Stages[stage] += el - rec.last
		rec.last = el
	}
	rec.Total = el
	rec.Done = true
	r.release()
	r.t = nil
}

// SpanView is the JSON-facing form of a finished span. Stage and attr maps
// carry only non-zero entries.
type SpanView struct {
	ID      uint64            `json:"id"`
	Kind    string            `json:"kind"`
	Key     string            `json:"key,omitempty"`
	Start   time.Time         `json:"start"`
	TotalNs int64             `json:"total_ns"`
	Stages  map[string]int64  `json:"stages,omitempty"`
	Attrs   map[string]int64  `json:"attrs,omitempty"`
	Counts  map[string]uint64 `json:"counts,omitempty"`
}

// Snapshot copies up to max finished spans out of the ring, newest first
// (max <= 0 means all). Slots mid-write are skipped, never waited on.
func (t *Tracer) Snapshot(max int) []SpanView {
	if t == nil {
		return nil
	}
	recs := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		slot := &t.slots[i]
		cur := slot.state.Load()
		if cur&1 == 1 {
			continue
		}
		if !slot.state.CompareAndSwap(cur, cur|1) {
			continue
		}
		rec := slot.rec
		slot.state.Store(cur)
		if rec.Done {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID > recs[b].ID })
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	out := make([]SpanView, len(recs))
	for i, rec := range recs {
		out[i] = t.view(rec)
	}
	return out
}

func (t *Tracer) view(rec SpanRecord) SpanView {
	v := SpanView{
		ID:      rec.ID,
		Kind:    rec.Kind,
		Key:     rec.Key,
		Start:   rec.Start,
		TotalNs: rec.Total.Nanoseconds(),
	}
	for i, name := range t.stages {
		if d := rec.Stages[i]; d != 0 {
			if v.Stages == nil {
				v.Stages = make(map[string]int64, len(t.stages))
			}
			v.Stages[name] = d.Nanoseconds()
		}
	}
	for i, name := range t.attrs {
		if rec.Attrs[i] != 0 || rec.Counts[i] != 0 {
			if v.Attrs == nil {
				v.Attrs = make(map[string]int64, len(t.attrs))
				v.Counts = make(map[string]uint64, len(t.attrs))
			}
			v.Attrs[name] = rec.Attrs[i].Nanoseconds()
			v.Counts[name] = rec.Counts[i]
		}
	}
	return v
}
