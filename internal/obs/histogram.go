package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefSecondsBuckets is the default bucket layout for duration histograms:
// 100µs to ~100s in half-decade steps, covering everything from a shard of
// Monte-Carlo packets to a full channel reallocation.
var DefSecondsBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100,
}

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start
		start *= factor
	}
	return bounds
}

// Histogram counts observations into fixed buckets and tracks their count
// and sum; Observe is a few atomic ops and never allocates.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefSecondsBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

func (h *Histogram) metricKind() string { return "histogram" }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~15) and the slice is hot in
	// cache, so this beats a branchy binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) time.Duration {
	d := time.Since(t0)
	h.Observe(d.Seconds())
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.bounds, cumulative, h.count.Load(), h.Sum()
}

// Span is a lightweight in-flight timing: Start captures the clock, End
// observes the elapsed seconds into the histogram. It is a value type, so
// timing a region costs no allocation:
//
//	defer reg.Histogram("x_seconds", "...", nil).Start().End()
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Start begins a span against this histogram.
func (h *Histogram) Start() Span { return Span{h: h, t0: time.Now()} }

// End observes the elapsed time and returns it.
func (s Span) End() time.Duration { return s.h.ObserveSince(s.t0) }
