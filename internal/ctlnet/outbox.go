package ctlnet

// outbox is the per-connection write side shared by server and agent. All
// outbound traffic is enqueued into latest-wins slots and drained by an
// on-demand writer goroutine into one batched write per wakeup — a v2
// frame, or concatenated JSON lines for a v1 peer. The design kills two
// fleet-scale problems at once:
//
//   - Slow-peer isolation: the enqueue path never blocks on the network.
//     A peer that stops reading stalls only its own writer goroutine,
//     which dies with the connection at the write deadline.
//   - Redundant traffic: assignments coalesce latest-wins while queued,
//     and an assignment identical to the last one written to this
//     connection is dropped entirely (state dedup, kolide-style) — an
//     unchanged fleet costs no push bytes at all.
//
// A write error marks the outbox dead and closes the connection, so the
// peer's read loop notices and the usual reconnect machinery takes over —
// the same semantics the old synchronous send path had.

import (
	"encoding/json"
	"io"
	"net"
	"sync"
	"time"

	"acorn/internal/obs"
)

// outboxMetrics are the wire-level counters an outbox feeds, bound once
// per registry and shared by every connection on that endpoint.
type outboxMetrics struct {
	txBytes   *obs.Counter
	txBatches *obs.Counter
	txMsgs    *obs.Counter

	// Server-side push accounting; nil on agents.
	pushDeduped   *obs.Counter
	pushCoalesced *obs.Counter
	pushErrors    *obs.Counter
	pushWin       *obs.Window

	// Agent-side report accounting; nil on servers.
	reportsCoalesced *obs.Counter
	reportsSame      *obs.Counter
}

type outbox struct {
	conn         net.Conn
	writeTimeout time.Duration
	m            *outboxMetrics

	// wmu serializes raw connection writes: the writer goroutine's batch
	// writes and the synchronous terminal error line must never interleave
	// bytes on the wire.
	wmu sync.Mutex

	mu      sync.Mutex
	v2      bool
	running bool
	dead    bool
	err     error

	sendAck  int // frame version to acknowledge; 0 none pending
	pongs    []uint64
	pings    []uint64
	report   *Report // latest-wins pending report (agent side)
	assign   Assign  // latest-wins pending assignment (server side)
	hasAsg   bool
	assignAt time.Time // enqueue time of the pending assignment

	lastPushed Assign // last assignment written, for state dedup
	hasPushed  bool
	// asgScratch carries the taken assignment from flush to writeBatch;
	// a field (not a local) so taking its address never heap-allocates.
	// Only the writer goroutine touches it.
	asgScratch Assign

	// lastRep is a private deep copy of the last full report framed on
	// this connection. A follow-up report with identical content collapses
	// to a seq-only kindReportSame — the kolide-style state-hash channel
	// that makes an unchanged fleet's re-confirmations nearly free. Only
	// the writer goroutine touches it; a private copy so callers mutating
	// a sent report's slices can't desync us from the peer's expansion
	// base. v2 connections only — JSON peers always get the full report.
	lastRep    Report
	hasLastRep bool

	// spare buffers swapped with the pending slices at flush time, so the
	// steady state recycles two arrays instead of allocating per batch.
	sparePongs []uint64
	sparePings []uint64

	enc  frameEncoder
	vbuf []byte // reused v1 JSON batch buffer
}

func newOutbox(conn net.Conn, writeTimeout time.Duration, m *outboxMetrics) *outbox {
	return &outbox{conn: conn, writeTimeout: writeTimeout, m: m}
}

// setV2 flips the write side to binary frames (agent side, on ack).
func (o *outbox) setV2() {
	o.mu.Lock()
	o.v2 = true
	o.mu.Unlock()
}

// Err returns the terminal write error, if any.
func (o *outbox) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// kick starts the writer if it is not running. Callers hold o.mu.
func (o *outbox) kick() {
	if o.dead || o.running {
		return
	}
	o.running = true
	go o.writer()
}

func (o *outbox) enqueueAck(v int) {
	o.mu.Lock()
	o.sendAck = v
	o.kick()
	o.mu.Unlock()
}

func (o *outbox) enqueuePong(seq uint64) {
	o.mu.Lock()
	o.pongs = append(o.pongs, seq)
	o.kick()
	o.mu.Unlock()
}

func (o *outbox) enqueuePing(seq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return o.err
	}
	o.pings = append(o.pings, seq)
	o.kick()
	return nil
}

// enqueueReport queues a report, coalescing latest-wins against a pending
// one. The replacement is sequence-aware: a caller-stamped older sequence
// (a reconnect replay racing a fresh report) never overwrites a newer
// pending one — it is dropped, exactly as the server would drop it.
func (o *outbox) enqueueReport(rep *Report) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return o.err
	}
	if o.report != nil {
		if rep.Seq != 0 && o.report.Seq != 0 && rep.Seq < o.report.Seq {
			return nil
		}
		if o.m.reportsCoalesced != nil {
			o.m.reportsCoalesced.Inc()
		}
	}
	o.report = rep
	o.kick()
	return nil
}

// pushOutcome classifies what enqueueAssign did with an assignment.
type pushOutcome int

const (
	pushEnqueued pushOutcome = iota
	pushDeduped
	pushDead
)

// enqueueAssign queues an assignment push. An assignment identical to the
// last one written on this connection (with nothing newer pending) is
// deduplicated away; a pending assignment is replaced latest-wins.
func (o *outbox) enqueueAssign(a Assign, at time.Time) pushOutcome {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.dead {
		return pushDead
	}
	if !o.hasAsg && o.hasPushed && o.lastPushed == a {
		if o.m.pushDeduped != nil {
			o.m.pushDeduped.Inc()
		}
		return pushDeduped
	}
	if o.hasAsg && o.m.pushCoalesced != nil {
		o.m.pushCoalesced.Inc()
	}
	o.assign = a
	o.hasAsg = true
	o.assignAt = at
	o.kick()
	return pushEnqueued
}

// sendError writes a terminal v1 JSON error line, bypassing the batch
// queue: the error must be readable by any peer (v2 readers handle both
// framings) and must hit the wire before the caller drops the connection.
func (o *outbox) sendError(reason string) {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	if o.writeTimeout > 0 {
		_ = o.conn.SetWriteDeadline(time.Now().Add(o.writeTimeout))
	}
	_ = writeMsg(o.conn, &Envelope{Type: TypeError, Error: &Error{Reason: reason}})
}

// writeDirect writes one v1 JSON message synchronously (the agent's hello,
// which always precedes negotiation).
func (o *outbox) writeDirect(env *Envelope) error {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	if o.writeTimeout > 0 {
		_ = o.conn.SetWriteDeadline(time.Now().Add(o.writeTimeout))
	}
	return writeMsg(o.conn, env)
}

// writer drains pending state into batched writes until the outbox is
// empty or dead. Spawned on the empty→nonempty transition, it exits as
// soon as there is nothing to send, so an idle connection costs no
// goroutine.
func (o *outbox) writer() {
	for {
		wrote, err := o.flush()
		if err != nil {
			o.mu.Lock()
			o.dead = true
			o.err = err
			o.running = false
			o.mu.Unlock()
			if o.m.pushErrors != nil {
				o.m.pushErrors.Inc()
			}
			// Closing the connection makes the peer's (and our own) read
			// loop notice the failure promptly.
			o.conn.Close()
			return
		}
		if !wrote {
			o.mu.Lock()
			if o.empty() || o.dead {
				o.running = false
				o.mu.Unlock()
				return
			}
			o.mu.Unlock()
		}
	}
}

// empty reports whether nothing is pending. Callers hold o.mu.
func (o *outbox) empty() bool {
	return o.sendAck == 0 && len(o.pongs) == 0 && len(o.pings) == 0 &&
		o.report == nil && !o.hasAsg
}

// flush writes at most one batch, reporting whether anything was written.
func (o *outbox) flush() (bool, error) {
	o.mu.Lock()
	if o.dead {
		err := o.err
		o.mu.Unlock()
		return false, err
	}
	if o.empty() {
		o.mu.Unlock()
		return false, nil
	}
	ack := o.sendAck
	o.sendAck = 0
	pongs := o.pongs
	o.pongs = o.sparePongs[:0]
	o.sparePongs = nil
	pings := o.pings
	o.pings = o.sparePings[:0]
	o.sparePings = nil
	rep := o.report
	o.report = nil
	var asg *Assign
	var asgAt time.Time
	if o.hasAsg {
		o.asgScratch = o.assign
		asg = &o.asgScratch
		asgAt = o.assignAt
		o.hasAsg = false
		o.lastPushed = o.assign
		o.hasPushed = true
	}
	v2 := o.v2
	o.mu.Unlock()

	err := o.writeBatch(v2, ack, pongs, pings, rep, asg)
	if err == nil && asg != nil && o.m.pushWin != nil && !asgAt.IsZero() {
		o.m.pushWin.Observe(time.Since(asgAt).Seconds())
	}

	// Recycle the drained slices for the next batch.
	o.mu.Lock()
	if o.sparePongs == nil {
		o.sparePongs = pongs[:0]
	}
	if o.sparePings == nil {
		o.sparePings = pings[:0]
	}
	o.mu.Unlock()
	return true, err
}

// writeBatch encodes one batch in the connection's framing and writes it
// with a single conn.Write under the write deadline.
func (o *outbox) writeBatch(v2 bool, ack int, pongs, pings []uint64, rep *Report, asg *Assign) error {
	var data []byte
	msgs := uint64(len(pongs) + len(pings))
	if ack != 0 {
		msgs++
	}
	if rep != nil {
		msgs++
	}
	if asg != nil {
		msgs++
	}
	if v2 {
		o.enc.begin()
		if ack != 0 {
			o.enc.FrameAck(ack)
		}
		for _, s := range pongs {
			o.enc.Pong(s)
		}
		for _, s := range pings {
			o.enc.Ping(s)
		}
		if rep != nil {
			if o.hasLastRep && equalReportBody(rep, &o.lastRep) {
				o.enc.ReportSame(rep.Seq)
				if o.m.reportsSame != nil {
					o.m.reportsSame.Inc()
				}
			} else {
				o.enc.Report(rep)
				o.lastRep.APID = rep.APID
				o.lastRep.Seq = rep.Seq
				o.lastRep.Clients = append(o.lastRep.Clients[:0], rep.Clients...)
				o.lastRep.Hears = append(o.lastRep.Hears[:0], rep.Hears...)
				o.hasLastRep = true
			}
		}
		if asg != nil {
			o.enc.Assign(asg)
		}
		var err error
		data, err = o.enc.finish()
		if err != nil {
			return err
		}
	} else {
		buf := o.vbuf[:0]
		appendLine := func(env *Envelope) error {
			b, err := json.Marshal(env)
			if err != nil {
				return err
			}
			buf = append(buf, b...)
			buf = append(buf, '\n')
			return nil
		}
		if ack != 0 {
			if err := appendLine(&Envelope{Type: TypeFrame, Frame: &FrameInfo{V: ack}}); err != nil {
				return err
			}
		}
		for _, s := range pongs {
			if err := appendLine(&Envelope{Type: TypePong, Pong: &Heartbeat{Seq: s}}); err != nil {
				return err
			}
		}
		for _, s := range pings {
			if err := appendLine(&Envelope{Type: TypePing, Ping: &Heartbeat{Seq: s}}); err != nil {
				return err
			}
		}
		if rep != nil {
			if err := appendLine(&Envelope{Type: TypeReport, Report: rep}); err != nil {
				return err
			}
		}
		if asg != nil {
			if err := appendLine(&Envelope{Type: TypeAssign, Assign: asg}); err != nil {
				return err
			}
		}
		o.vbuf = buf
		data = buf
	}
	o.wmu.Lock()
	defer o.wmu.Unlock()
	if o.writeTimeout > 0 {
		_ = o.conn.SetWriteDeadline(time.Now().Add(o.writeTimeout))
	}
	if _, err := o.conn.Write(data); err != nil {
		return err
	}
	if o.m.txBytes != nil {
		o.m.txBytes.Add(uint64(len(data)))
		o.m.txBatches.Inc()
		o.m.txMsgs.Add(msgs)
	}
	return nil
}

// equalReportBody reports whether two reports carry identical measurement
// content (sequence numbers excluded — they differ by design between a
// report and its re-confirmation).
func equalReportBody(a, b *Report) bool {
	if a.APID != b.APID || len(a.Clients) != len(b.Clients) || len(a.Hears) != len(b.Hears) {
		return false
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			return false
		}
	}
	for i := range a.Hears {
		if a.Hears[i] != b.Hears[i] {
			return false
		}
	}
	return true
}

// countingReader counts bytes read from the underlying connection into a
// shared counter — one atomic add per buffered refill, not per message.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 && cr.c != nil {
		cr.c.Add(uint64(n))
	}
	return n, err
}
