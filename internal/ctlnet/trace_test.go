package ctlnet

import (
	"net"
	"testing"
	"time"

	"acorn/internal/core"
	"acorn/internal/obs"
)

// TestStreamPassSpansAndSLO boots a stream-mode server with tracing and an
// SLO monitor, feeds it reports, and asserts the triggered pass produced a
// finished span whose stage partition covers the receipt-to-push path and
// whose latency landed in the SLO window.
func TestStreamPassSpansAndSLO(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(1)
	s.Obs = obs.NewRegistry()
	s.Stream = StreamConfig{
		Enabled:  true,
		Debounce: time.Millisecond,
		Gate:     core.GateOptions{Streak: 1},
	}
	s.Tracer = NewServerTracer(64, 1, nil)
	s.SLO = obs.NewSLO(obs.SLOOptions{Name: "ctlnet_pass_p99", Budget: time.Hour})
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() { _ = s.Close() })
	addr := l.Addr().String()

	a1, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(addr, Hello{APID: "AP2", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if err := a1.SendReport(report([]string{"AP2"}, 30, 28)); err != nil {
		t.Fatal(err)
	}
	if err := a2.SendReport(report([]string{"AP1"}, 25, 20)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.StreamStats(); st.Passes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no streaming pass completed: %+v", s.StreamStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	spans := s.Tracer.Snapshot(0)
	if len(spans) == 0 {
		t.Fatalf("no pass spans recorded")
	}
	sawStream := false
	for _, sp := range spans {
		if sp.Kind != "stream" {
			continue
		}
		sawStream = true
		var sum int64
		for _, ns := range sp.Stages {
			sum += ns
		}
		if sum != sp.TotalNs {
			t.Fatalf("pass span stage sum %d != total %d (%+v)", sum, sp.TotalNs, sp.Stages)
		}
		// Queue (receipt + debounce) and the view build always take
		// measurable wall time on a real clock.
		if sp.Stages["queue"] <= 0 {
			t.Fatalf("pass span missing queue dwell: %v", sp.Stages)
		}
		for stage := range sp.Stages {
			ok := false
			for _, name := range ServerTraceStages {
				if stage == name {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("pass span charged unknown stage %q", stage)
			}
		}
	}
	if !sawStream {
		t.Fatalf("no stream-kind span among %d spans", len(spans))
	}

	if st := s.SLO.Status(); st.WindowCount == 0 {
		t.Fatalf("pass latency never reached the SLO window: %+v", st)
	}

	// The authoritative full pass is traced too, under its own kind.
	if _, err := s.Reallocate(); err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for _, sp := range s.Tracer.Snapshot(0) {
		if sp.Kind == "full" {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatalf("Reallocate produced no full-kind span")
	}
}
