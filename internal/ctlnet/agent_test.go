package ctlnet

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"acorn/internal/spectrum"
)

// TestUpdatesCoalesceLatestWins floods an agent with assignments while no
// consumer reads Updates(): the agent must coalesce to the newest value,
// never deliver a stale one, and never block its read loop.
func TestUpdatesCoalesceLatestWins(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	// Drain everything the agent writes (hello, reports) so the
	// synchronous pipe never blocks it.
	go func() { _, _ = io.Copy(io.Discard, srv) }()
	a, err := NewAgent(cli, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const n = 30
	for i := 1; i <= n; i++ {
		err := writeMsg(srv, &Envelope{Type: TypeAssign, Assign: &Assign{
			APID: "AP1", WidthMHz: 20, Primary: i,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := spectrum.NewChannel20(spectrum.ChannelID(n))
	// Wait until the read loop has processed the last assignment.
	deadline := time.Now().Add(5 * time.Second)
	for a.Current() != want {
		if time.Now().After(deadline) {
			t.Fatalf("agent never reached %v (current %v, err %v)", want, a.Current(), a.Err())
		}
		time.Sleep(time.Millisecond)
	}
	// The single buffered slot must hold the freshest assignment, not the
	// first one that happened to fit.
	select {
	case got := <-a.Updates():
		if got != want {
			t.Fatalf("slow consumer received stale assignment %v, want %v", got, want)
		}
	default:
		t.Fatal("no pending update despite unconsumed assignments")
	}
	select {
	case got := <-a.Updates():
		t.Fatalf("second pending update %v; coalescing should leave exactly one", got)
	default:
	}
}

// TestServerIgnoresStaleSeq verifies the controller never rolls an AP's
// view backwards when an old report (e.g. a delayed duplicate) arrives
// after a newer one.
func TestServerIgnoresStaleSeq(t *testing.T) {
	s, addr := startServer(t)
	a, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	newest := report(nil, 30)
	newest.Seq = 5
	if err := a.SendReport(newest); err != nil {
		t.Fatal(err)
	}
	waitForSeq(t, s, "AP1", 5)

	stale := report(nil, 2)
	stale.Seq = 3
	if err := a.SendReport(stale); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	s.mu.Lock()
	got := s.reports["AP1"].rep
	s.mu.Unlock()
	if got.Seq != 5 || got.Clients[0].SNR20dB != 30 {
		t.Fatalf("stale report overwrote the view: %+v", got)
	}
}

// waitForSeq polls until the server's stored report for apID reaches seq.
func waitForSeq(t *testing.T, s *Server, apID string, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		got := s.reports[apID].rep.Seq
		s.mu.Unlock()
		if got >= seq {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never saw seq %d from %s", seq, apID)
}

// TestReconnectingAgentReplaysAfterRestart kills the controller outright
// and restarts it on the same address: the agent must reconnect with
// backoff, re-send its hello, and replay its last report (same sequence)
// without any new SendReport call.
func TestReconnectingAgentReplaysAfterRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	s1 := NewServer(1)
	go func() { _ = s1.Serve(l) }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ra, err := NewReconnectingAgent(ctx, addr, Hello{APID: "AP1", TxPowerDBm: 18}, ReconnectOptions{
		Backoff: Backoff{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Agent:   AgentOptions{HeartbeatInterval: 20 * time.Millisecond, PeerTimeout: 500 * time.Millisecond},
		Log:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	if err := ra.SendReport(report(nil, 25)); err != nil {
		t.Fatal(err)
	}
	waitForReports(t, s1, 1)
	if _, err := s1.Reallocate(); err != nil {
		t.Fatal(err)
	}
	first := waitRAssign(t, ra)

	// Controller dies.
	_ = s1.Close()

	// Controller restarts with empty state on the same address.
	var l2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s2 := NewServer(1)
	go func() { _ = s2.Serve(l2) }()
	defer s2.Close()

	// The replayed report repopulates the fresh controller without any
	// new SendReport.
	waitForReports(t, s2, 1)
	s2.mu.Lock()
	replayed := s2.reports["AP1"].rep
	s2.mu.Unlock()
	if replayed.Seq != 1 {
		t.Fatalf("replay changed the sequence: got %d, want 1", replayed.Seq)
	}
	if len(replayed.Clients) != 1 || replayed.Clients[0].SNR20dB != 25 {
		t.Fatalf("replayed report differs: %+v", replayed)
	}
	if _, err := s2.Reallocate(); err != nil {
		t.Fatal(err)
	}
	second := waitRAssign(t, ra)
	if second.IsZero() {
		t.Fatal("no assignment after reconnect")
	}
	if ra.Sessions() < 2 {
		t.Fatalf("expected at least 2 sessions, got %d", ra.Sessions())
	}
	_ = first
}

// TestReconnectingAgentBacksOffUntilServerExists starts the agent against
// a dead address, confirms it keeps retrying, then brings the controller
// up and sees the pre-connect report delivered by replay.
func TestReconnectingAgentBacksOffUntilServerExists(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // free the port: dials now fail with connection refused

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ra, err := NewReconnectingAgent(ctx, addr, Hello{APID: "AP1", TxPowerDBm: 18}, ReconnectOptions{
		Backoff: Backoff{Min: 5 * time.Millisecond, Max: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	// Reported while no controller exists: must be queued, not lost.
	if err := ra.SendReport(report(nil, 20)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for ra.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("agent never recorded a dial failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ra.Sessions() != 0 || ra.Connected() {
		t.Fatalf("connected to a dead address: sessions=%d", ra.Sessions())
	}

	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s was taken meanwhile: %v", addr, err)
	}
	s := NewServer(1)
	go func() { _ = s.Serve(l2) }()
	defer s.Close()

	waitForReports(t, s, 1)
	if ra.Sessions() != 1 {
		t.Fatalf("want 1 session after server start, got %d", ra.Sessions())
	}
}

// waitRAssign blocks for the next assignment from a reconnecting agent.
func waitRAssign(t *testing.T, ra *ReconnectingAgent) spectrum.Channel {
	t.Helper()
	select {
	case ch := <-ra.Updates():
		return ch
	case <-time.After(5 * time.Second):
		t.Fatalf("no assignment within timeout (last err %v)", ra.LastErr())
		return spectrum.Channel{}
	}
}
