package ctlnet

// Inbound sharding: instead of every connection goroutine contending on
// the controller mutex per report, connections are spread over N
// accept/IO shards. Each shard owns a bounded MPSC queue with the same
// coalescing discipline as core/stream.go — latest-wins per AP
// (sequence-aware), shed-oldest-first when full — and a pump goroutine
// that drains the queue in batches and applies each batch to the
// controller under a single lock acquisition. A slow or storming peer
// fills only its shard's queue; its reports coalesce in place and the
// rest of the fleet keeps flowing.

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"acorn/internal/obs"
)

// DefaultShardQueueCap bounds each shard's pending report queue.
const DefaultShardQueueCap = 4096

// ShardConfig sizes the server's inbound accept/IO sharding.
type ShardConfig struct {
	// N is the number of accept/IO shards. Zero picks
	// min(8, GOMAXPROCS); negative forces a single shard.
	N int
	// QueueCap bounds each shard's pending report queue (reports beyond
	// it shed oldest-first, counted). Zero means DefaultShardQueueCap.
	QueueCap int
}

func (c ShardConfig) shards() int {
	if c.N > 0 {
		return c.N
	}
	if c.N < 0 {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (c ShardConfig) queueCap() int {
	if c.QueueCap > 0 {
		return c.QueueCap
	}
	return DefaultShardQueueCap
}

// reportEvent is one queued report with its arrival time.
type reportEvent struct {
	apID string
	rep  Report
	recv time.Time
}

// shard is one accept/IO lane.
type shard struct {
	id  int
	cap int

	wake chan struct{}

	mu    sync.Mutex
	queue []reportEvent
	index map[string]int // apID → index into queue

	// Per-shard counters, bound once at startup.
	enqueued  *obs.Counter
	coalesced *obs.Counter
	shed      *obs.Counter
	batches   *obs.Counter
}

func newShard(id, queueCap int, m *serverMetrics) *shard {
	lbl := strconv.Itoa(id)
	return &shard{
		id:        id,
		cap:       queueCap,
		wake:      make(chan struct{}, 1),
		index:     make(map[string]int),
		enqueued:  m.shardReports.With(lbl),
		coalesced: m.shardCoalesced.With(lbl),
		shed:      m.shardShed.With(lbl),
		batches:   m.shardBatches.With(lbl),
	}
}

// offer enqueues a report with latest-wins coalescing: a pending report
// from the same AP is replaced in place unless the newcomer carries an
// older non-zero sequence (a replay racing a fresh report), which is
// dropped. A full queue sheds its oldest entry first, counted.
func (sh *shard) offer(apID string, rep Report, recv time.Time) {
	sh.mu.Lock()
	sh.enqueued.Inc()
	if i, ok := sh.index[apID]; ok {
		pending := &sh.queue[i]
		if !(rep.Seq != 0 && pending.rep.Seq != 0 && rep.Seq < pending.rep.Seq) {
			pending.rep = rep
			pending.recv = recv
		}
		sh.coalesced.Inc()
		sh.mu.Unlock()
		return
	}
	if len(sh.queue) >= sh.cap {
		// Shed the oldest queued report; its AP loses this interval's
		// update but keeps its stored view — membership is never shed.
		oldest := sh.queue[0]
		copy(sh.queue, sh.queue[1:])
		sh.queue = sh.queue[:len(sh.queue)-1]
		delete(sh.index, oldest.apID)
		for ap, idx := range sh.index {
			sh.index[ap] = idx - 1
		}
		sh.shed.Inc()
	}
	sh.index[apID] = len(sh.queue)
	sh.queue = append(sh.queue, reportEvent{apID: apID, rep: rep, recv: recv})
	sh.mu.Unlock()
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// drain moves every queued event into buf (reused across calls) and
// resets the queue, keeping its backing array.
func (sh *shard) drain(buf []reportEvent) []reportEvent {
	sh.mu.Lock()
	buf = append(buf[:0], sh.queue...)
	sh.queue = sh.queue[:0]
	clear(sh.index)
	sh.mu.Unlock()
	return buf
}

// startShards lazily builds the shard set and starts one pump per shard.
// Called from Serve; idempotent.
func (s *Server) startShards() []*shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shardSet != nil {
		return s.shardSet
	}
	m := s.m()
	n := s.Shards.shards()
	qcap := s.Shards.queueCap()
	s.shardStop = make(chan struct{})
	s.shardSet = make([]*shard, n)
	for i := range s.shardSet {
		sh := newShard(i, qcap, m)
		s.shardSet[i] = sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.shardPump(sh)
		}()
	}
	return s.shardSet
}

// stopShards wakes every pump into its stop path.
func (s *Server) stopShards() {
	s.mu.Lock()
	stop := s.shardStop
	s.shardStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// shardPump drains its shard's queue in batches, applying each batch to
// the controller state under one lock acquisition.
func (s *Server) shardPump(sh *shard) {
	s.mu.Lock()
	stop := s.shardStop
	s.mu.Unlock()
	if stop == nil {
		return
	}
	var buf []reportEvent
	for {
		select {
		case <-stop:
			return
		case <-sh.wake:
		}
		for {
			buf = sh.drain(buf)
			if len(buf) == 0 {
				break
			}
			sh.batches.Inc()
			s.applyReports(buf)
		}
	}
}

// applyReports installs a drained batch into the controller's report
// table, preserving the per-AP sequence discipline: out-of-order reports
// are dropped as stale, equal sequences are reconnect replays that keep
// their original receive time (no TTL laundering), fresh reports mark
// their AP dirty in stream mode.
func (s *Server) applyReports(batch []reportEvent) {
	m := s.m()
	var applied, stale, replayed uint64
	var staleAP string
	var dirty []dirtyMark
	s.mu.Lock()
	for i := range batch {
		ev := &batch[i]
		prev, had := s.reports[ev.apID]
		if had && ev.rep.Seq != 0 && ev.rep.Seq < prev.rep.Seq {
			stale++
			staleAP = ev.apID
			continue
		}
		replay := had && ev.rep.Seq != 0 && ev.rep.Seq == prev.rep.Seq
		recv := ev.recv
		if replay {
			recv = prev.recv
		}
		s.reports[ev.apID] = storedReport{rep: ev.rep, recv: recv}
		applied++
		if replay {
			replayed++
		} else if s.Stream.Enabled {
			dirty = append(dirty, dirtyMark{ap: ev.apID, at: recv})
		}
	}
	s.mu.Unlock()
	if applied > 0 {
		m.reportsTotal.Add(applied)
	}
	if stale > 0 {
		m.reportsStale.Add(stale)
		s.stormLogger().Warn("ignoring stale reports", "count", stale, "lastAP", staleAP)
	}
	if replayed > 0 {
		m.reportsReplayed.Add(replayed)
	}
	for _, d := range dirty {
		s.markDirty(d.ap, d.at)
	}
}

// dirtyMark defers a stream-mode dirty marking until the controller lock
// is released (markDirty takes the stream lock).
type dirtyMark struct {
	ap string
	at time.Time
}
