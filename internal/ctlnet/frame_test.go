package ctlnet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// frameReader wraps encoded wire bytes for readMsgAny.
func frameReader(data []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(data))
}

// TestFrameRoundTripAllKinds encodes one frame carrying every message kind
// and decodes it back through readMsgAny, asserting field equality. The
// scratch-reuse contract means each envelope is checked before the next
// call.
func TestFrameRoundTripAllKinds(t *testing.T) {
	var enc frameEncoder
	enc.begin()
	enc.FrameAck(FrameV2)
	enc.Hello(&Hello{APID: "ap-1", TxPowerDBm: 17.5, Frame: FrameV2})
	rep := Report{
		APID: "ap-1", Seq: 42,
		Clients: []ClientObs{{ClientID: "c0", SNR20dB: 23.25}, {ClientID: "c1", SNR20dB: 31}},
		Hears:   []string{"ap-2", "ap-3"},
	}
	enc.Report(&rep)
	enc.ReportSame(43)
	enc.Assign(&Assign{APID: "ap-1", WidthMHz: 40, Primary: 36, Secondary: 40})
	enc.Error("boom")
	enc.Ping(7)
	enc.Pong(8)
	data, err := enc.finish()
	if err != nil {
		t.Fatal(err)
	}

	r := frameReader(data)
	dec := &frameDecoder{}
	next := func() *Envelope {
		t.Helper()
		env, err := readMsgAny(r, dec)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return env
	}

	if env := next(); env.Type != TypeFrame || env.Frame.V != FrameV2 {
		t.Fatalf("ack = %+v", env)
	}
	if env := next(); env.Type != TypeHello || *env.Hello != (Hello{APID: "ap-1", TxPowerDBm: 17.5, Frame: FrameV2}) {
		t.Fatalf("hello = %+v", env.Hello)
	}
	env := next()
	if env.Type != TypeReport || env.Report.APID != rep.APID || env.Report.Seq != rep.Seq {
		t.Fatalf("report = %+v", env.Report)
	}
	if len(env.Report.Clients) != 2 || env.Report.Clients[1] != rep.Clients[1] {
		t.Fatalf("report clients = %+v", env.Report.Clients)
	}
	if len(env.Report.Hears) != 2 || env.Report.Hears[0] != "ap-2" || env.Report.Hears[1] != "ap-3" {
		t.Fatalf("report hears = %+v", env.Report.Hears)
	}
	env = next()
	if env.Type != TypeReport || env.Report.APID != rep.APID || env.Report.Seq != 43 {
		t.Fatalf("report-same = %+v", env.Report)
	}
	if len(env.Report.Clients) != 2 || env.Report.Clients[1] != rep.Clients[1] ||
		len(env.Report.Hears) != 2 || env.Report.Hears[0] != "ap-2" {
		t.Fatalf("report-same expansion = %+v", env.Report)
	}
	if env := next(); env.Type != TypeAssign || *env.Assign != (Assign{APID: "ap-1", WidthMHz: 40, Primary: 36, Secondary: 40}) {
		t.Fatalf("assign = %+v", env.Assign)
	}
	if env := next(); env.Type != TypeError || env.Error.Reason != "boom" {
		t.Fatalf("error = %+v", env.Error)
	}
	if env := next(); env.Type != TypePing || env.Ping.Seq != 7 {
		t.Fatalf("ping = %+v", env)
	}
	if env := next(); env.Type != TypePong || env.Pong.Seq != 8 {
		t.Fatalf("pong = %+v", env)
	}
	if _, err := readMsgAny(r, dec); err != io.EOF {
		t.Fatalf("after frame: err = %v, want EOF", err)
	}
}

// TestFrameMixedWithJSON interleaves a JSON line between two frames on one
// stream: the peeked-magic dispatch must route each correctly.
func TestFrameMixedWithJSON(t *testing.T) {
	var enc frameEncoder
	enc.begin()
	enc.Pong(1)
	f1, _ := enc.finish()
	var buf bytes.Buffer
	buf.Write(f1)
	if err := writeMsg(&buf, &Envelope{Type: TypePing, Ping: &Heartbeat{Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	enc.begin()
	enc.Pong(3)
	f2, _ := enc.finish()
	buf.Write(f2)

	r := frameReader(buf.Bytes())
	dec := &frameDecoder{}
	for i, want := range []struct {
		typ string
		seq uint64
	}{{TypePong, 1}, {TypePing, 2}, {TypePong, 3}} {
		env, err := readMsgAny(r, dec)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if env.Type != want.typ {
			t.Fatalf("msg %d: type %q, want %q", i, env.Type, want.typ)
		}
	}
}

// TestFrameBeforeNegotiation asserts a frame byte on a connection that
// never negotiated v2 (nil decoder) is a tagged protocol violation, not a
// panic or a hang.
func TestFrameBeforeNegotiation(t *testing.T) {
	var enc frameEncoder
	enc.begin()
	enc.Pong(1)
	data, _ := enc.finish()
	_, err := readMsgAny(frameReader(data), nil)
	if !errors.Is(err, errMalformed) {
		t.Fatalf("err = %v, want errMalformed", err)
	}
}

// TestFrameBounds drives the decoder with structurally hostile frames and
// asserts each is rejected with errMalformed (protocol violation) or the
// proper transport error (truncation), never accepted or panicking.
func TestFrameBounds(t *testing.T) {
	valid := func() []byte {
		var enc frameEncoder
		enc.begin()
		enc.Pong(1)
		data, _ := enc.finish()
		return append([]byte(nil), data...)
	}()

	cases := []struct {
		name      string
		data      []byte
		malformed bool // else: expect a transport truncation error
	}{
		{"truncated header", valid[:3], true},
		{"wrong version", func() []byte {
			d := append([]byte(nil), valid...)
			d[1] = 3
			return d
		}(), true},
		{"zero payload", []byte{frameMagic, FrameV2, 0, 0, 0, 0}, true},
		{"oversized payload length", []byte{frameMagic, FrameV2, 0xFF, 0xFF, 0xFF, 0xFF}, true},
		{"truncated payload", valid[:len(valid)-1], false},
		{"unknown kind", func() []byte {
			var enc frameEncoder
			enc.begin()
			enc.buf = append(enc.buf, 99)
			d, _ := enc.finish()
			return append([]byte(nil), d...)
		}(), true},
		{"oversized string", func() []byte {
			var enc frameEncoder
			enc.begin()
			enc.buf = append(enc.buf, kindError)
			enc.uint(maxFrameStr + 1)
			d, _ := enc.finish()
			return append([]byte(nil), d...)
		}(), true},
		{"oversized group", func() []byte {
			var enc frameEncoder
			enc.begin()
			enc.buf = append(enc.buf, kindReport)
			enc.str("ap")
			enc.uint(0)                 // seq
			enc.uint(maxFrameItems + 1) // client count
			d, _ := enc.finish()
			return append([]byte(nil), d...)
		}(), true},
		{"report-same without prior report", func() []byte {
			var enc frameEncoder
			enc.begin()
			enc.ReportSame(5)
			d, _ := enc.finish()
			return append([]byte(nil), d...)
		}(), true},
		{"truncated varint", func() []byte {
			var enc frameEncoder
			enc.begin()
			enc.buf = append(enc.buf, kindPong) // body missing entirely
			d, _ := enc.finish()
			return append([]byte(nil), d...)
		}(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readMsgAny(frameReader(tc.data), &frameDecoder{})
			if err == nil {
				t.Fatal("hostile frame accepted")
			}
			if tc.malformed && !errors.Is(err, errMalformed) {
				t.Fatalf("err = %v, want errMalformed", err)
			}
			if !tc.malformed && !(errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)) {
				t.Fatalf("err = %v, want truncation", err)
			}
		})
	}
}

// captureConn records written bytes so tests can inspect and decode the
// exact wire traffic an outbox produced.
type captureConn struct {
	discardConn
	buf bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) { return c.buf.Write(p) }

// TestReportSameCollapses pins the steady-state chatter win: an unchanged
// report re-sent on a v2 connection collapses to a seq-only report-same
// frame that the receiver expands to the full prior content, and any
// content change goes back to a full report.
func TestReportSameCollapses(t *testing.T) {
	cc := &captureConn{}
	ob := newOutbox(cc, 0, &outboxMetrics{})
	ob.setV2()

	rep := func(seq uint64, snr float64) *Report {
		return &Report{
			APID: "ap-00042", Seq: seq,
			Clients: []ClientObs{{ClientID: "c0", SNR20dB: snr}, {ClientID: "c1", SNR20dB: 31.5}},
			Hears:   []string{"ap-00041", "ap-00043"},
		}
	}
	if err := ob.writeBatch(true, 0, nil, nil, rep(1, 23.25), nil); err != nil {
		t.Fatal(err)
	}
	full := cc.buf.Len()
	if err := ob.writeBatch(true, 0, nil, nil, rep(2, 23.25), nil); err != nil {
		t.Fatal(err)
	}
	same := cc.buf.Len() - full
	if same >= full/4 {
		t.Fatalf("report-same frame is %d bytes vs %d full: want at least 4x smaller", same, full)
	}
	if err := ob.writeBatch(true, 0, nil, nil, rep(3, 24.0), nil); err != nil {
		t.Fatal(err)
	}

	r := frameReader(cc.buf.Bytes())
	dec := &frameDecoder{}
	for i, want := range []struct {
		seq uint64
		snr float64
	}{{1, 23.25}, {2, 23.25}, {3, 24.0}} {
		env, err := readMsgAny(r, dec)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if env.Type != TypeReport || env.Report.Seq != want.seq {
			t.Fatalf("msg %d = %+v", i, env)
		}
		if env.Report.APID != "ap-00042" || len(env.Report.Clients) != 2 ||
			env.Report.Clients[0].SNR20dB != want.snr || len(env.Report.Hears) != 2 {
			t.Fatalf("msg %d content = %+v", i, env.Report)
		}
	}
	if _, err := readMsgAny(r, dec); err != io.EOF {
		t.Fatalf("after stream: err = %v, want EOF", err)
	}
}

// TestFrameSmallerThanJSON pins the point of the exercise: the same report
// batch costs materially fewer bytes framed than as JSON lines.
func TestFrameSmallerThanJSON(t *testing.T) {
	rep := Report{
		APID: "ap-00042", Seq: 1234,
		Clients: []ClientObs{{ClientID: "c0", SNR20dB: 23.25}, {ClientID: "c1", SNR20dB: 31.5}},
		Hears:   []string{"ap-00041", "ap-00043"},
	}
	var enc frameEncoder
	enc.begin()
	enc.Report(&rep)
	v2, err := enc.finish()
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := writeMsg(&v1, &Envelope{Type: TypeReport, Report: &rep}); err != nil {
		t.Fatal(err)
	}
	if len(v2)*2 >= v1.Len() {
		t.Fatalf("v2 frame %d bytes vs v1 line %d bytes: want at least 2x smaller", len(v2), v1.Len())
	}
}
