package ctlnet

// Trace-stage catalog of the networked control plane. One span covers one
// reallocation pass — from the earliest report receipt that triggered it
// (stream mode) or the call itself (full pass) to the last assignment
// push — so a finished span attributes the whole receive-to-push path:
// queue/debounce wait, measurement-view build, the association sweep, the
// channel search, gating, and the network pushes.

import (
	"time"

	"acorn/internal/obs"
)

// Stage indices for Server pass spans (names in ServerTraceStages).
const (
	// PassStageQueue: earliest triggering report receipt to pass start —
	// dirty-set dwell plus the debounce. Zero for direct full passes.
	PassStageQueue = iota
	// PassStageView: report snapshot, TTL quarantine, and the
	// measurement-view build (buildView + search seeding).
	PassStageView
	// PassStageAssoc: the pre-allocation Algorithm 1 roaming sweep.
	PassStageAssoc
	// PassStageAlloc: the Algorithm 2 channel search.
	PassStageAlloc
	// PassStageGate: anti-flap gate verdicts and assignment install.
	PassStageGate
	// PassStagePush: assignment pushes to connected agents.
	PassStagePush
	// PassStageFinal: post-push bookkeeping (allocation metrics, pass
	// counters) before the span closes.
	PassStageFinal

	numPassStages
)

// ServerTraceStages names the pass stages, indexed by the constants above.
var ServerTraceStages = []string{
	"queue", "view", "assoc", "alloc", "gate", "push", "final",
}

// Attribution bucket indices (names in ServerTraceAttrs).
const (
	// PassAttrRankEval: wall time inside fresh channel-rank evaluations
	// (AllocStats.RankNanos) and the count of such evaluations.
	PassAttrRankEval = iota
)

// ServerTraceAttrs names the pass attribution buckets.
var ServerTraceAttrs = []string{"rank_eval"}

// NewServerTracer builds a tracer configured for Server pass spans. ring
// <= 0 picks the default; sample follows obs.TracerOptions semantics (0
// off, 1 everything, N one-in-N); now may be nil (time.Now).
func NewServerTracer(ring, sample int, now func() time.Time) *obs.Tracer {
	return obs.NewTracer(obs.TracerOptions{
		Ring:   ring,
		Sample: sample,
		Stages: ServerTraceStages,
		Attrs:  ServerTraceAttrs,
		Now:    now,
	})
}
