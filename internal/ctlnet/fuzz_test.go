package ctlnet

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// acceptable classifies decoder errors a hostile peer may provoke: protocol
// violations must carry the errMalformed tag (so the endpoint replies
// cleanly before dropping the peer) and truncation surfaces as the io
// errors the transport layer produces. Anything else — or a panic — is a
// bug.
func acceptable(err error) bool {
	return err == nil ||
		errors.Is(err, errMalformed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// FuzzDecodeEnvelope fuzzes the v1 JSON line decoder: arbitrary bytes must
// decode, hit errMalformed, or end in a transport error — never panic,
// never succeed with a body-less envelope.
func FuzzDecodeEnvelope(f *testing.F) {
	seed := func(env *Envelope) []byte {
		var buf bytes.Buffer
		if err := writeMsg(&buf, env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(&Envelope{Type: TypeHello, Hello: &Hello{APID: "ap-1", TxPowerDBm: 20}}))
	f.Add(seed(&Envelope{Type: TypeReport, Report: &Report{APID: "ap-1", Seq: 3,
		Clients: []ClientObs{{ClientID: "c0", SNR20dB: 25}}, Hears: []string{"ap-2"}}}))
	f.Add(seed(&Envelope{Type: TypeAssign, Assign: &Assign{APID: "ap-1", WidthMHz: 40, Primary: 36, Secondary: 40}}))
	f.Add(seed(&Envelope{Type: TypePing, Ping: &Heartbeat{Seq: 9}}))
	f.Add(seed(&Envelope{Type: TypeFrame, Frame: &FrameInfo{V: FrameV2}}))
	f.Add([]byte(`{"type":"hello"}` + "\n"))            // type without body
	f.Add([]byte(`{"type":"warp"}` + "\n"))             // unknown type
	f.Add([]byte(`{"type":` + "\n"))                    // broken JSON
	f.Add([]byte("\n"))                                 // empty line
	f.Add(bytes.Repeat([]byte("a"), 4096))              // no newline at all
	f.Add([]byte(`{"type":"pong","pong":{"seq":-1}}` + "\n")) // type confusion

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			env, err := readMsg(r)
			if err != nil {
				if !acceptable(err) {
					t.Fatalf("unacceptable error: %v", err)
				}
				return
			}
			checkEnvelope(t, env)
		}
	})
}

// FuzzDecodeFrame fuzzes the mixed-framing reader (v2 frames and v1 lines
// on one stream) with the same contract, plus io.ErrUnexpectedEOF for
// frames whose header promises more payload than the stream holds.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(build func(e *frameEncoder)) []byte {
		var e frameEncoder
		e.begin()
		build(&e)
		data, err := e.finish()
		if err != nil {
			f.Fatal(err)
		}
		return append([]byte(nil), data...)
	}
	full := frame(func(e *frameEncoder) {
		e.FrameAck(FrameV2)
		e.Hello(&Hello{APID: "ap-1", TxPowerDBm: 20, Frame: FrameV2})
		e.Report(&Report{APID: "ap-1", Seq: 7,
			Clients: []ClientObs{{ClientID: "c0", SNR20dB: 30}}, Hears: []string{"ap-2"}})
		e.ReportSame(8)
		e.Assign(&Assign{APID: "ap-1", WidthMHz: 20, Primary: 1})
		e.Error("nope")
		e.Ping(1)
		e.Pong(1)
	})
	f.Add(full)
	for _, cut := range []int{1, 3, frameHdrLen, frameHdrLen + 2, len(full) - 1} {
		f.Add(full[:cut])
	}
	verconf := append([]byte(nil), full...)
	verconf[1] = 3 // version confusion
	f.Add(verconf)
	f.Add([]byte{frameMagic, FrameV2, 0xFF, 0xFF, 0xFF, 0xFF, 0}) // oversized length
	f.Add([]byte{frameMagic, FrameV2, 0, 0, 0, 1, 99})            // unknown kind
	f.Add(frame(func(e *frameEncoder) { e.uint(1 << 40) }))       // garbage body
	f.Add(frame(func(e *frameEncoder) { e.ReportSame(3) }))       // report-same, no prior report
	// A JSON line then a frame on the same stream.
	mixed := []byte(`{"type":"ping","ping":{"seq":4}}` + "\n")
	f.Add(append(mixed, full...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		dec := &frameDecoder{}
		for i := 0; i < 64; i++ {
			env, err := readMsgAny(r, dec)
			if err != nil {
				if !acceptable(err) {
					t.Fatalf("unacceptable error: %v", err)
				}
				return
			}
			checkEnvelope(t, env)
		}
	})
}

// checkEnvelope asserts the decoder's invariant: a returned envelope has a
// known type and the matching body present.
func checkEnvelope(t *testing.T, env *Envelope) {
	t.Helper()
	ok := false
	switch env.Type {
	case TypeHello:
		ok = env.Hello != nil
	case TypeReport:
		ok = env.Report != nil
	case TypeAssign:
		ok = env.Assign != nil
	case TypeError:
		ok = env.Error != nil
	case TypePing:
		ok = env.Ping != nil
	case TypePong:
		ok = env.Pong != nil
	case TypeFrame:
		ok = env.Frame != nil
	}
	if !ok {
		t.Fatalf("decoder accepted type %q with missing body", env.Type)
	}
}
