package ctlnet

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"acorn/internal/faultnet"
	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// syncBuffer is a mutex-guarded bytes.Buffer so tests can read captured
// log output while the logger is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// testLogger routes obs log lines to the test log.
func testLogger(t *testing.T) *obs.Logger {
	return obs.NewLogger(testWriter{t}, obs.LevelDebug)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// counterValue reads a counter out of a snapshot by name (0 if absent).
func counterValue(reg *obs.Registry, name string) uint64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Value != nil {
			return uint64(*s.Value)
		}
	}
	return 0
}

// TestChaosConvergence drives a controller plus three reconnecting agents
// through injected connection resets, delays, and corrupted bytes, then
// calms the network and asserts the system converges: every agent holds
// the controller's current assignment and mutually contending APs end up
// on disjoint spectrum.
func TestChaosConvergence(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.NewInjector(faultnet.Config{
		Seed:          7,
		ConnResetProb: 0.5, // at least 20% of connections reset, per the failure model
		ResetAfterOps: 12,
		DelayProb:     0.25,
		MaxDelay:      2 * time.Millisecond,
		CorruptProb:   0.03,
	})
	reg := obs.NewRegistry()
	s := NewServer(1)
	s.HelloTimeout = 300 * time.Millisecond
	s.PeerTimeout = 500 * time.Millisecond
	s.WriteTimeout = time.Second
	s.Obs = reg
	go func() { _ = s.Serve(inj.WrapListener(l)) }()
	defer s.Close()
	addr := l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ids := []string{"AP1", "AP2", "AP3"}
	hears := map[string][]string{
		"AP1": {"AP2", "AP3"},
		"AP2": {"AP1", "AP3"},
		"AP3": {"AP1", "AP2"},
	}
	agents := map[string]*ReconnectingAgent{}
	var wg sync.WaitGroup
	for i, id := range ids {
		ra, err := NewReconnectingAgent(ctx, addr, Hello{APID: id, TxPowerDBm: 18}, ReconnectOptions{
			Backoff: Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Agent: AgentOptions{
				HeartbeatInterval: 20 * time.Millisecond,
				PeerTimeout:       500 * time.Millisecond,
				WriteTimeout:      500 * time.Millisecond,
			},
			Obs:  reg,
			Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ra.Close()
		agents[id] = ra
		// Each AP keeps measuring and reporting through the chaos.
		wg.Add(1)
		go func(id string, ra *ReconnectingAgent) {
			defer wg.Done()
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					_ = ra.SendReport(report(hears[id], 25, 22))
				}
			}
		}(id, ra)
	}

	// Chaos phase: keep reallocating while the network misbehaves. Run at
	// least the base window, then keep the chaos going until at least 20%
	// of connections have been reset (doomed connections need a few ops
	// to reach their injected reset), bounded by a hard cap.
	chaosMin := time.Now().Add(1200 * time.Millisecond)
	chaosCap := time.Now().Add(10 * time.Second)
	for {
		_, _ = s.Reallocate() // failures are expected mid-chaos
		time.Sleep(80 * time.Millisecond)
		if time.Now().Before(chaosMin) {
			continue
		}
		st := inj.Stats()
		if st.Resets > 0 && st.Delays > 0 && st.Resets*5 >= st.Conns {
			break
		}
		if time.Now().After(chaosCap) {
			break
		}
	}
	st := inj.Stats()
	t.Logf("chaos stats: %+v", st)
	if st.Conns < 3 {
		t.Fatalf("chaos exercised only %d connections", st.Conns)
	}
	if st.Resets == 0 || st.Delays == 0 {
		t.Fatalf("chaos injected no resets or no delays: %+v", st)
	}
	if st.Resets*5 < st.Conns {
		t.Fatalf("fewer than 20%% of connections reset: %+v", st)
	}

	// The reconnect machinery must have surfaced the chaos in its metrics:
	// every re-established session is a new dial, and the injected resets
	// guarantee drops beyond the three initial sessions.
	if n := counterValue(reg, "acorn_ctlnet_dial_attempts_total"); n < 3 {
		t.Errorf("acorn_ctlnet_dial_attempts_total = %d, want >= 3", n)
	}
	if n := counterValue(reg, "acorn_ctlnet_sessions_total"); n < 3 {
		t.Errorf("acorn_ctlnet_sessions_total = %d, want >= 3", n)
	}
	if counterValue(reg, "acorn_ctlnet_session_drops_total")+
		counterValue(reg, "acorn_ctlnet_dial_failures_total") == 0 {
		t.Error("chaos produced no session drops and no dial failures")
	}

	// Calm the network and require convergence.
	inj.Disable()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		out, err := s.Reallocate()
		if err != nil || len(out) != len(ids) {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if agentsMatch(agents, out, 2*time.Second) {
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					a, b := out[ids[i]], out[ids[j]]
					if a.Conflicts(b) {
						t.Fatalf("contending %s and %s share spectrum: %v vs %v", ids[i], ids[j], a, b)
					}
				}
			}
			cancel()
			wg.Wait()
			return
		}
	}
	for id, ra := range agents {
		t.Logf("%s: current=%v connected=%v sessions=%d lastErr=%v",
			id, ra.Current(), ra.Connected(), ra.Sessions(), ra.LastErr())
	}
	t.Fatal("agents never converged to the controller's assignment")
}

// agentsMatch polls until every agent's current channel equals the
// controller's assignment, or the window elapses.
func agentsMatch(agents map[string]*ReconnectingAgent, want map[string]spectrum.Channel, window time.Duration) bool {
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		ok := true
		for id, ra := range agents {
			if ra.Current() != want[id] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// quarantineServer starts a server with a short report TTL and a captured
// log.
func quarantineServer(t *testing.T, ttl time.Duration) (*Server, string, func() string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	s := NewServer(1)
	s.ReportTTL = ttl
	s.Log = obs.NewLogger(&buf, obs.LevelDebug)
	s.Obs = obs.NewRegistry()
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() { _ = s.Close() })
	return s, l.Addr().String(), buf.String
}

// TestReallocateQuarantinesStaleReports lets one agent go silent past the
// TTL: Reallocate must still succeed on the other APs' fresh views plus
// the silenced AP's last-known-good report, and must log the quarantine.
func TestReallocateQuarantinesStaleReports(t *testing.T) {
	const ttl = 150 * time.Millisecond
	s, addr, logs := quarantineServer(t, ttl)

	ids := []string{"AP1", "AP2", "AP3"}
	agents := map[string]*Agent{}
	for _, id := range ids {
		a, err := Dial(addr, Hello{APID: id, TxPowerDBm: 18})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[id] = a
		if err := a.SendReport(report(nil, 25)); err != nil {
			t.Fatal(err)
		}
	}
	waitForReports(t, s, 3)

	// Everyone goes quiet past the TTL, then only AP1 and AP2 report
	// again; AP3 stays silent (still connected — its heartbeat would keep
	// the session alive in a long-running deployment).
	time.Sleep(ttl + 50*time.Millisecond)
	mark := time.Now()
	for _, id := range []string{"AP1", "AP2"} {
		if err := agents[id].SendReport(report(nil, 27)); err != nil {
			t.Fatal(err)
		}
	}
	waitForFreshReports(t, s, mark, "AP1", "AP2")

	assigns, err := s.Reallocate()
	if err != nil {
		t.Fatalf("reallocate with one stale AP must degrade, not fail: %v", err)
	}
	if len(assigns) != 3 {
		t.Fatalf("want assignments for all 3 APs (stale one via last-known-good), got %d", len(assigns))
	}
	if got := logs(); !strings.Contains(got, "quarantin") || !strings.Contains(got, "AP3") {
		t.Errorf("quarantine of AP3 not logged; log:\n%s", got)
	}
	if n := counterValue(s.Obs, "acorn_ctlnet_reports_quarantined_total"); n == 0 {
		t.Error("acorn_ctlnet_reports_quarantined_total did not advance")
	}

	// With every report stale there is no fresh view left: refuse.
	time.Sleep(ttl + 50*time.Millisecond)
	if _, err := s.Reallocate(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("reallocate with all reports stale: err = %v, want stale refusal", err)
	}
}

// TestLastKnownGoodSurvivesDisconnect drops an agent entirely: its report
// must keep feeding Reallocate as the last-known-good view until the TTL
// passes.
func TestLastKnownGoodSurvivesDisconnect(t *testing.T) {
	s, addr, logs := quarantineServer(t, time.Minute)

	a, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendReport(report(nil, 25)); err != nil {
		t.Fatal(err)
	}
	waitForReports(t, s, 1)
	a.Close()

	// Wait for the server to notice the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.agents)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reaped the closed agent")
		}
		time.Sleep(5 * time.Millisecond)
	}

	assigns, err := s.Reallocate()
	if err != nil {
		t.Fatalf("reallocate from last-known-good after disconnect: %v", err)
	}
	if _, ok := assigns["AP1"]; !ok {
		t.Fatalf("disconnected AP lost its assignment: %v", assigns)
	}
	_ = logs
}

// waitForFreshReports polls until the named APs' reports were received
// after mark.
func waitForFreshReports(t *testing.T, s *Server, mark time.Time, ids ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		s.mu.Lock()
		for _, id := range ids {
			if !s.reports[id].recv.After(mark) {
				ok = false
				break
			}
		}
		s.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fresh reports from %v never arrived", ids)
}
