// Package ctlnet is ACORN's control plane over the wire: access points run
// an Agent that reports link measurements to a central Controller over TCP
// (the role the paper's Click deployment and IAPP coordination play), and
// the Controller runs Algorithm 2 over the reported view and pushes channel
// assignments back.
//
// The protocol is newline-delimited JSON, one message per line, with a
// type tag. It is deliberately simple — the interesting logic lives in the
// algorithms; the wire layer's job is to be robust: bounded line lengths,
// strict decoding, clean shutdown, and no trust in peer input.
package ctlnet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxLineBytes bounds a single protocol message.
const MaxLineBytes = 1 << 20

// Message types.
const (
	TypeHello  = "hello"
	TypeReport = "report"
	TypeAssign = "assign"
	TypeError  = "error"
	TypePing   = "ping"
	TypePong   = "pong"
	// TypeFrame is the controller's framing acknowledgement: it is sent
	// only to agents whose hello requested frame version 2 (a v1 peer
	// would reject the unknown type), and tells the agent it may switch
	// its own writes to binary frames.
	TypeFrame = "frame"
)

// errMalformed tags protocol violations (as opposed to transport errors),
// so endpoints can send a clean error reply before dropping the peer.
var errMalformed = errors.New("malformed message")

// errLineTooLong is returned before an oversized line is fully read, so a
// hostile peer cannot make the endpoint buffer unbounded input.
var errLineTooLong = fmt.Errorf("message exceeds %d bytes: %w", MaxLineBytes, errMalformed)

// Envelope is the outer frame of every message.
type Envelope struct {
	Type string `json:"type"`
	// Exactly one of the following is set, matching Type.
	Hello  *Hello     `json:"hello,omitempty"`
	Report *Report    `json:"report,omitempty"`
	Assign *Assign    `json:"assign,omitempty"`
	Error  *Error     `json:"error,omitempty"`
	Ping   *Heartbeat `json:"ping,omitempty"`
	Pong   *Heartbeat `json:"pong,omitempty"`
	Frame  *FrameInfo `json:"frame,omitempty"`
}

// FrameInfo is the body of the framing acknowledgement.
type FrameInfo struct {
	// V is the frame version the controller will accept and emit on this
	// connection (currently always FrameV2).
	V int `json:"v"`
}

// Heartbeat is the body of ping and pong keepalives. A peer answers every
// ping with a pong echoing the sequence number; receiving either refreshes
// the local read deadline, so an idle-but-alive session is never reaped.
type Heartbeat struct {
	Seq uint64 `json:"seq"`
}

// Hello announces an AP to the controller.
type Hello struct {
	APID string `json:"apID"`
	// TxPowerDBm is the AP's transmit power.
	TxPowerDBm float64 `json:"txPowerDBm"`
	// Frame is the highest wire framing version the agent can read (see
	// frame.go). Zero or FrameV1 keeps newline-delimited JSON; FrameV2
	// asks the controller to switch the connection to batched binary
	// frames. omitempty keeps the hello bit-for-bit identical for v1
	// peers that never set it.
	Frame int `json:"frame,omitempty"`
}

// ClientObs is one measured client link.
type ClientObs struct {
	ClientID string `json:"clientID"`
	// SNR20dB is the measured 20 MHz-reference per-subcarrier SNR.
	SNR20dB float64 `json:"snr20dB"`
}

// Report carries an AP's current measurements.
type Report struct {
	APID string `json:"apID"`
	// Seq is a per-AP monotonic sequence number. The controller ignores a
	// report whose Seq is lower than the newest one it holds for the AP,
	// so a reconnect replay can never roll the view backwards. Zero means
	// "unsequenced" and is always accepted (legacy agents).
	Seq uint64 `json:"seq,omitempty"`
	// Clients are the AP's associated clients and their link qualities.
	Clients []ClientObs `json:"clients"`
	// Hears lists the AP IDs this AP senses above the carrier-sense
	// threshold (the contention edges of the interference graph).
	Hears []string `json:"hears"`
}

// Assign is the controller's channel decision for one AP.
type Assign struct {
	APID string `json:"apID"`
	// WidthMHz is 20 or 40.
	WidthMHz int `json:"widthMHz"`
	// Primary and Secondary are the 20 MHz component channel numbers
	// (Secondary 0 for a 20 MHz assignment).
	Primary   int `json:"primary"`
	Secondary int `json:"secondary"`
}

// Error reports a protocol failure to the peer before disconnecting.
type Error struct {
	Reason string `json:"reason"`
}

// writeMsg encodes one envelope as a JSON line.
func writeMsg(w io.Writer, env *Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("ctlnet: encode: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// readLine reads up to and including the next newline, failing as soon as
// the accumulated line exceeds MaxLineBytes rather than after buffering the
// whole oversized message. The remainder of an oversized line is left
// unconsumed; callers must drop the connection on errLineTooLong.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > MaxLineBytes {
			return nil, fmt.Errorf("ctlnet: %w", errLineTooLong)
		}
		if err == nil {
			return line, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

// readMsg decodes the next JSON line, enforcing the size bound.
func readMsg(r *bufio.Reader) (*Envelope, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("ctlnet: decode: %v: %w", err, errMalformed)
	}
	switch env.Type {
	case TypeHello:
		if env.Hello == nil {
			return nil, protoErrf("hello without body")
		}
	case TypeReport:
		if env.Report == nil {
			return nil, protoErrf("report without body")
		}
	case TypeAssign:
		if env.Assign == nil {
			return nil, protoErrf("assign without body")
		}
	case TypeError:
		if env.Error == nil {
			return nil, protoErrf("error without body")
		}
	case TypePing:
		if env.Ping == nil {
			return nil, protoErrf("ping without body")
		}
	case TypePong:
		if env.Pong == nil {
			return nil, protoErrf("pong without body")
		}
	case TypeFrame:
		if env.Frame == nil {
			return nil, protoErrf("frame without body")
		}
	default:
		return nil, protoErrf("unknown message type %q", env.Type)
	}
	return &env, nil
}

// protoErrf builds a protocol-violation error tagged with errMalformed.
func protoErrf(format string, args ...any) error {
	return fmt.Errorf("ctlnet: "+format+": %w", append(args, errMalformed)...)
}
