// Package ctlnet is ACORN's control plane over the wire: access points run
// an Agent that reports link measurements to a central Controller over TCP
// (the role the paper's Click deployment and IAPP coordination play), and
// the Controller runs Algorithm 2 over the reported view and pushes channel
// assignments back.
//
// The protocol is newline-delimited JSON, one message per line, with a
// type tag. It is deliberately simple — the interesting logic lives in the
// algorithms; the wire layer's job is to be robust: bounded line lengths,
// strict decoding, clean shutdown, and no trust in peer input.
package ctlnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MaxLineBytes bounds a single protocol message.
const MaxLineBytes = 1 << 20

// Message types.
const (
	TypeHello  = "hello"
	TypeReport = "report"
	TypeAssign = "assign"
	TypeError  = "error"
)

// Envelope is the outer frame of every message.
type Envelope struct {
	Type string `json:"type"`
	// Exactly one of the following is set, matching Type.
	Hello  *Hello  `json:"hello,omitempty"`
	Report *Report `json:"report,omitempty"`
	Assign *Assign `json:"assign,omitempty"`
	Error  *Error  `json:"error,omitempty"`
}

// Hello announces an AP to the controller.
type Hello struct {
	APID string `json:"apID"`
	// TxPowerDBm is the AP's transmit power.
	TxPowerDBm float64 `json:"txPowerDBm"`
}

// ClientObs is one measured client link.
type ClientObs struct {
	ClientID string `json:"clientID"`
	// SNR20dB is the measured 20 MHz-reference per-subcarrier SNR.
	SNR20dB float64 `json:"snr20dB"`
}

// Report carries an AP's current measurements.
type Report struct {
	APID string `json:"apID"`
	// Clients are the AP's associated clients and their link qualities.
	Clients []ClientObs `json:"clients"`
	// Hears lists the AP IDs this AP senses above the carrier-sense
	// threshold (the contention edges of the interference graph).
	Hears []string `json:"hears"`
}

// Assign is the controller's channel decision for one AP.
type Assign struct {
	APID string `json:"apID"`
	// WidthMHz is 20 or 40.
	WidthMHz int `json:"widthMHz"`
	// Primary and Secondary are the 20 MHz component channel numbers
	// (Secondary 0 for a 20 MHz assignment).
	Primary   int `json:"primary"`
	Secondary int `json:"secondary"`
}

// Error reports a protocol failure to the peer before disconnecting.
type Error struct {
	Reason string `json:"reason"`
}

// writeMsg encodes one envelope as a JSON line.
func writeMsg(w io.Writer, env *Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("ctlnet: encode: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// readMsg decodes the next JSON line, enforcing the size bound.
func readMsg(r *bufio.Reader) (*Envelope, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) > MaxLineBytes {
		return nil, fmt.Errorf("ctlnet: message exceeds %d bytes", MaxLineBytes)
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("ctlnet: decode: %w", err)
	}
	switch env.Type {
	case TypeHello:
		if env.Hello == nil {
			return nil, fmt.Errorf("ctlnet: hello without body")
		}
	case TypeReport:
		if env.Report == nil {
			return nil, fmt.Errorf("ctlnet: report without body")
		}
	case TypeAssign:
		if env.Assign == nil {
			return nil, fmt.Errorf("ctlnet: assign without body")
		}
	case TypeError:
		if env.Error == nil {
			return nil, fmt.Errorf("ctlnet: error without body")
		}
	default:
		return nil, fmt.Errorf("ctlnet: unknown message type %q", env.Type)
	}
	return &env, nil
}
