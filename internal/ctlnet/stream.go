package ctlnet

// Event-driven controller mode: instead of waiting for the next periodic
// Reallocate, every accepted report marks its AP dirty in a coalesced set
// (latest-wins per AP — a storm of reports from one AP is one unit of work)
// and wakes a consumer goroutine. The consumer debounces briefly so a burst
// collapses into one pass, expands the dirty set one hop through the
// reported hear-graph, and runs a reallocation restricted to that
// neighbourhood with every proposed switch judged by a core.SwitchGate
// (goodput hysteresis, per-AP token buckets, flap accounting). A watchdog
// forces a periodic full ungated-streak pass so vetoed or failed work is
// never stranded.
//
// The periodic path is untouched: with Stream.Enabled false the server
// behaves exactly as before, and even in stream mode the public Reallocate
// remains the authoritative full pass (it bypasses the streak rule but
// still pays rate tokens, so the per-AP switch-rate bound holds across both
// paths).

import (
	"fmt"
	"sync"
	"time"

	"acorn/internal/core"
	"acorn/internal/obs"
)

// Default stream-mode tuning.
const (
	// DefaultStreamDebounce is how long the consumer waits after a wake-up
	// before draining the dirty set, so a report storm coalesces into one
	// neighbourhood pass.
	DefaultStreamDebounce = 25 * time.Millisecond
	// DefaultStreamWatchdog bounds how stale the last full pass may get
	// before the consumer forces one.
	DefaultStreamWatchdog = 2 * time.Minute
)

// StreamConfig switches the server into event-driven mode and tunes it.
type StreamConfig struct {
	// Enabled turns report-triggered reallocation on. Off, the server only
	// reallocates when Reallocate is called (the periodic mode).
	Enabled bool
	// Gate parameterizes the anti-flap switch gate shared by the streaming
	// and full passes. The zero value takes core's defaults.
	Gate core.GateOptions
	// Debounce is the wake-to-drain delay that coalesces report bursts.
	// Zero means DefaultStreamDebounce; negative disables.
	Debounce time.Duration
	// WatchdogPeriod bounds the age of the last successful full pass; past
	// it the consumer forces one (bypassing the streak hysteresis, so
	// sustained-but-vetoed improvements eventually land). Zero means
	// DefaultStreamWatchdog; negative disables the watchdog.
	WatchdogPeriod time.Duration
}

func (c StreamConfig) debounce() time.Duration {
	return timeout(c.Debounce, DefaultStreamDebounce)
}

func (c StreamConfig) watchdogPeriod() time.Duration {
	return timeout(c.WatchdogPeriod, DefaultStreamWatchdog)
}

// streamState is the server's event-mode machinery, all guarded by its own
// mutex so report handlers never contend with a running allocation.
type streamState struct {
	mu       sync.Mutex
	gate     *core.SwitchGate
	dirty    map[string]bool
	earliest time.Time // receive time of the oldest report in the dirty set
	wake     chan struct{}
	stopc    chan struct{}
	lastFull time.Time

	marks, coalesced   uint64
	passes, fullPasses uint64
	failed             uint64
	vetoed, applied    uint64
}

// ServerStreamStats snapshots the event-driven mode for tests and
// introspection.
type ServerStreamStats struct {
	Enabled    bool
	DirtyDepth int
	// Marks counts reports that dirtied an AP; Coalesced counts the subset
	// absorbed into an already-dirty AP (the queue's latest-wins merges).
	Marks, Coalesced uint64
	// Passes counts neighbourhood-restricted reallocations; FullPasses
	// counts watchdog- or Reallocate-driven full ones. Failed counts passes
	// that errored (their dirty set is requeued, not lost).
	Passes, FullPasses, Failed uint64
	// SwitchesVetoed / SwitchesApplied count gate decisions on proposed
	// channel switches across both pass kinds.
	SwitchesVetoed, SwitchesApplied uint64
	LastFull                        time.Time
	Gate                            core.GateStats
}

// startStream launches the consumer goroutine. Idempotent; a no-op unless
// Stream.Enabled.
func (s *Server) startStream() {
	if !s.Stream.Enabled {
		return
	}
	st := &s.stream
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stopc != nil {
		return
	}
	if st.gate == nil {
		st.gate = core.NewSwitchGate(s.Stream.Gate, nil)
	}
	if st.dirty == nil {
		st.dirty = make(map[string]bool)
	}
	st.wake = make(chan struct{}, 1)
	st.stopc = make(chan struct{})
	st.lastFull = time.Now()
	s.wg.Add(1)
	go s.runStream(st.stopc, st.wake)
}

// stopStream stops the consumer; Close's wg.Wait joins it.
func (s *Server) stopStream() {
	st := &s.stream
	st.mu.Lock()
	stopc := st.stopc
	st.stopc = nil
	st.mu.Unlock()
	if stopc != nil {
		close(stopc)
	}
}

// markDirty records that an AP's view changed and wakes the consumer. recv
// is the report's receive time; the oldest one in the dirty set becomes the
// origin of the next pass's span, so queue + debounce dwell is attributed.
func (s *Server) markDirty(apID string, recv time.Time) {
	st := &s.stream
	st.mu.Lock()
	if st.dirty == nil {
		st.dirty = make(map[string]bool)
	}
	st.marks++
	if st.dirty[apID] {
		st.coalesced++
	}
	st.dirty[apID] = true
	if st.earliest.IsZero() || recv.Before(st.earliest) {
		st.earliest = recv
	}
	wake := st.wake
	s.m().streamDirty.Set(float64(len(st.dirty)))
	st.mu.Unlock()
	if wake != nil {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

// takeDirty drains the dirty set, returning it with the receive time of
// its oldest report (zero when empty).
func (s *Server) takeDirty() (map[string]bool, time.Time) {
	st := &s.stream
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.dirty) == 0 {
		return nil, time.Time{}
	}
	out := st.dirty
	earliest := st.earliest
	st.dirty = make(map[string]bool)
	st.earliest = time.Time{}
	s.m().streamDirty.Set(0)
	return out, earliest
}

// requeueDirty puts a failed pass's work back so the trigger is not lost;
// the pass's origin is restored too, so the retry's latency still counts
// from the original receipt.
func (s *Server) requeueDirty(dirty map[string]bool, earliest time.Time) {
	st := &s.stream
	st.mu.Lock()
	for ap := range dirty {
		st.dirty[ap] = true
	}
	if !earliest.IsZero() && (st.earliest.IsZero() || earliest.Before(st.earliest)) {
		st.earliest = earliest
	}
	s.m().streamDirty.Set(float64(len(st.dirty)))
	st.mu.Unlock()
}

// hearNeighbourhood expands a dirty AP set one hop through the reported
// hear-graph (symmetrized, exactly as buildView wires contention), so a
// restricted pass covers every AP whose spectrum the dirty ones contend
// for. Unknown AP ids are dropped.
func (s *Server) hearNeighbourhood(dirty map[string]bool) map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]bool, 2*len(dirty))
	for ap := range dirty {
		if _, known := s.hellos[ap]; known {
			out[ap] = true
		}
	}
	for ap, sr := range s.reports {
		for _, other := range sr.rep.Hears {
			if _, known := s.hellos[other]; !known {
				continue
			}
			if dirty[ap] {
				out[other] = true
			}
			if dirty[other] {
				out[ap] = true
			}
		}
	}
	return out
}

// runStream is the consumer: it drains the dirty set after a debounce on
// every wake-up, and keeps the watchdog honest on a coarse tick even when
// no events flow.
func (s *Server) runStream(stopc chan struct{}, wake chan struct{}) {
	defer s.wg.Done()
	tickEvery := s.Stream.watchdogPeriod() / 4
	if tickEvery <= 0 || tickEvery > time.Second {
		tickEvery = time.Second
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-wake:
			if d := s.Stream.debounce(); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-stopc:
					timer.Stop()
					return
				case <-timer.C:
				}
			}
			s.streamPass()
		case <-tick.C:
			s.streamPass() // drains requeued work from failed passes
			s.maybeWatchdog()
		}
	}
}

// streamPass runs one neighbourhood-restricted, gated reallocation over the
// currently dirty APs. A failed pass requeues its dirty set. The pass is
// traced as one span from the oldest triggering report's receipt to the
// last push, and its latency feeds the server's SLO monitor.
func (s *Server) streamPass() {
	dirty, earliest := s.takeDirty()
	if len(dirty) == 0 {
		return
	}
	only := s.hearNeighbourhood(dirty)
	if len(only) == 0 {
		return // every dirty id was unknown; nothing to do
	}
	m := s.m()
	var span obs.SpanRef
	if s.Tracer != nil {
		origin := earliest
		if origin.IsZero() {
			origin = s.Tracer.Now()
		}
		span = s.Tracer.Begin("stream", fmt.Sprintf("aps=%d", len(only)), origin)
		span.Mark(PassStageQueue)
	}
	if _, err := s.reallocate(only, false, span); err != nil {
		s.stream.mu.Lock()
		s.stream.failed++
		s.stream.mu.Unlock()
		m.streamFailures.Inc()
		s.stormLogger().Warn("stream pass failed, requeueing", "dirty", len(dirty), "err", err)
		s.requeueDirty(dirty, earliest)
		return
	}
	span.MarkEnd(PassStageFinal)
	if !earliest.IsZero() {
		s.SLO.Observe(time.Since(earliest))
	}
	s.stream.mu.Lock()
	s.stream.passes++
	s.stream.mu.Unlock()
	m.streamPasses.With("local").Inc()
}

// maybeWatchdog forces a full pass when the last one is too old, so work
// stranded by vetoes, failures, or lost wake-ups always lands eventually.
func (s *Server) maybeWatchdog() {
	period := s.Stream.watchdogPeriod()
	if period <= 0 || s.KnownAgents() == 0 {
		return
	}
	st := &s.stream
	st.mu.Lock()
	due := time.Since(st.lastFull) > period
	st.mu.Unlock()
	if !due {
		return
	}
	s.m().streamWatchdog.Inc()
	if _, err := s.Reallocate(); err != nil {
		s.log().Warn("watchdog full pass failed", "err", err)
		// lastFull advances only on success, so the watchdog retries on the
		// next tick rather than going quiet for another full period.
	}
}

// noteFullPass records a successful unrestricted reallocation.
func (s *Server) noteFullPass() {
	st := &s.stream
	st.mu.Lock()
	st.fullPasses++
	st.lastFull = time.Now()
	st.mu.Unlock()
	if s.Stream.Enabled {
		s.m().streamPasses.With("full").Inc()
	}
}

// StreamStats snapshots the event-driven mode.
func (s *Server) StreamStats() ServerStreamStats {
	st := &s.stream
	st.mu.Lock()
	out := ServerStreamStats{
		Enabled:         s.Stream.Enabled,
		DirtyDepth:      len(st.dirty),
		Marks:           st.marks,
		Coalesced:       st.coalesced,
		Passes:          st.passes,
		FullPasses:      st.fullPasses,
		Failed:          st.failed,
		SwitchesVetoed:  st.vetoed,
		SwitchesApplied: st.applied,
		LastFull:        st.lastFull,
	}
	gate := st.gate
	st.mu.Unlock()
	if gate != nil {
		out.Gate = gate.Stats()
	}
	return out
}

// GateSwitchTimes exposes the per-AP committed switch timestamps inside the
// flap window — nil when stream mode never started. Chaos tests assert the
// rate invariant directly on these.
func (s *Server) GateSwitchTimes() map[string][]time.Time {
	st := &s.stream
	st.mu.Lock()
	gate := st.gate
	st.mu.Unlock()
	if gate == nil {
		return nil
	}
	return gate.SwitchTimes()
}
