package ctlnet

import (
	"net"
	"testing"
	"time"
)

// discardConn is a net.Conn that swallows writes: the push benchmarks
// measure encode + batch cost, not a transport.
type discardConn struct{}

func (discardConn) Read(p []byte) (int, error)         { return 0, nil }
func (discardConn) Write(p []byte) (int, error)        { return len(p), nil }
func (discardConn) Close() error                       { return nil }
func (discardConn) LocalAddr() net.Addr                { return nil }
func (discardConn) RemoteAddr() net.Addr               { return nil }
func (discardConn) SetDeadline(t time.Time) error      { return nil }
func (discardConn) SetReadDeadline(t time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(t time.Time) error { return nil }

// benchmarkServerPush measures one op = a 100-connection push wave:
// enqueue an assignment into each connection's outbox and flush it in the
// requested framing. running is pre-set so the enqueue never spawns the
// writer goroutine — flush runs inline, keeping the measurement
// deterministic. Assignments alternate so state dedup never elides the
// write. The allocs_per_push_batch extra feeds `benchjson -derive`'s
// v1/v2 alloc ratio, with the denominator floored at one alloc because a
// v2 wave's steady state genuinely allocates nothing.
func benchmarkServerPush(b *testing.B, v2 bool) {
	const conns = 100
	m := &outboxMetrics{}
	obs := make([]*outbox, conns)
	for i := range obs {
		obs[i] = newOutbox(discardConn{}, 0, m)
		obs[i].running = true // suppress the writer goroutine; we flush inline
		obs[i].v2 = v2
	}
	alt := [2]Assign{
		{APID: "ap-0", WidthMHz: 20, Primary: 1},
		{APID: "ap-0", WidthMHz: 40, Primary: 36, Secondary: 40},
	}
	// Every wave alternates the assignment (tracked here, not by the
	// caller) so state dedup can never elide a write mid-measurement.
	parity := 0
	wave := func() {
		a := alt[parity%2]
		parity++
		at := time.Now()
		for _, ob := range obs {
			if out := ob.enqueueAssign(a, at); out != pushEnqueued {
				b.Fatalf("enqueue outcome %d", out)
			}
			if _, err := ob.flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	wave() // warm up buffers so steady state is measured

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wave()
	}
	b.StopTimer()

	perWave := testing.AllocsPerRun(50, wave)
	if perWave < 1 {
		perWave = 1
	}
	b.ReportMetric(perWave, "allocs_per_push_batch")
}

func BenchmarkServerPushV1(b *testing.B) { benchmarkServerPush(b, false) }
func BenchmarkServerPushV2(b *testing.B) { benchmarkServerPush(b, true) }
