package ctlnet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// fixtureReport is the deterministic measurement fixture: AP i reports two
// clients with fixed SNRs and hears its neighbours in a cluster of four.
func fixtureReport(i, n int) Report {
	id := fmt.Sprintf("mv-%03d", i)
	rep := Report{
		APID: id,
		Clients: []ClientObs{
			{ClientID: "c0", SNR20dB: 20 + float64(i%7)},
			{ClientID: "c1", SNR20dB: 26 + float64(i%5)},
		},
	}
	cluster := i / 4
	for p := cluster * 4; p < (cluster+1)*4 && p < n; p++ {
		if p != i {
			rep.Hears = append(rep.Hears, fmt.Sprintf("mv-%03d", p))
		}
	}
	return rep
}

// runMixedFixture boots len(frames) agents — agent i negotiating frames[i]
// — against a fresh server, replays the fixture, reallocates, and returns
// the server's stored assignments once every agent holds exactly its own.
func runMixedFixture(t *testing.T, frames []int) map[string]spectrum.Channel {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(99)
	s.Obs = obs.NewRegistry()
	go func() { _ = s.Serve(l) }()
	defer s.Close()

	n := len(frames)
	agents := make([]*Agent, n)
	for i, fv := range frames {
		a, err := DialOpts(l.Addr().String(),
			Hello{APID: fmt.Sprintf("mv-%03d", i), TxPowerDBm: 20},
			AgentOptions{Frame: fv, Obs: s.Obs})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[i] = a
		if err := a.SendReport(fixtureReport(i, n)); err != nil {
			t.Fatal(err)
		}
	}
	waitForReports(t, s, n)
	want, err := s.Reallocate()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := 0
		for i, a := range agents {
			if a.Current() == want[fmt.Sprintf("mv-%03d", i)] {
				ok++
			}
		}
		if ok == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d agents converged", ok, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return s.Assignments()
}

// TestMixedVersionFleetConverges replays the same fixture through an
// all-v1 fleet and a mixed v1/v2 fleet on servers seeded identically: the
// wire framing must be invisible to the allocation — final assignment
// tables bit-equal — and every agent must end up holding its assignment.
func TestMixedVersionFleetConverges(t *testing.T) {
	const n = 24
	allV1 := make([]int, n)
	mixed := make([]int, n)
	for i := range allV1 {
		allV1[i] = FrameV1
		if i%2 == 0 {
			mixed[i] = FrameV2
		} else {
			mixed[i] = FrameV1
		}
	}
	base := runMixedFixture(t, allV1)
	got := runMixedFixture(t, mixed)
	if len(base) != len(got) {
		t.Fatalf("assignment counts differ: v1 %d, mixed %d", len(base), len(got))
	}
	for ap, ch := range base {
		if got[ap] != ch {
			t.Fatalf("ap %s: all-v1 %+v, mixed %+v", ap, ch, got[ap])
		}
	}
}
