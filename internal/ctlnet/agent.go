package ctlnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"acorn/internal/spectrum"
)

// Agent is the AP-side endpoint: it says hello, streams reports, and
// receives channel assignments.
type Agent struct {
	apID string
	conn net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex

	mu      sync.Mutex
	current spectrum.Channel
	updates chan spectrum.Channel
	readErr error
	done    chan struct{}
}

// Dial connects to the controller and performs the hello exchange.
func Dial(addr string, hello Hello) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewAgent(conn, hello)
}

// NewAgent runs the agent protocol over an existing connection (tests use
// net.Pipe). The hello is sent immediately; a background reader collects
// assignments.
func NewAgent(conn net.Conn, hello Hello) (*Agent, error) {
	if hello.APID == "" {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: agent requires an AP id")
	}
	a := &Agent{
		apID:    hello.APID,
		conn:    conn,
		r:       bufio.NewReaderSize(conn, 64<<10),
		updates: make(chan spectrum.Channel, 8),
		done:    make(chan struct{}),
	}
	if err := writeMsg(conn, &Envelope{Type: TypeHello, Hello: &hello}); err != nil {
		conn.Close()
		return nil, err
	}
	go a.readLoop()
	return a, nil
}

func (a *Agent) readLoop() {
	defer close(a.done)
	for {
		env, err := readMsg(a.r)
		if err != nil {
			a.mu.Lock()
			a.readErr = err
			a.mu.Unlock()
			return
		}
		switch env.Type {
		case TypeAssign:
			ch, err := channelFromAssign(env.Assign)
			if err != nil {
				a.mu.Lock()
				a.readErr = err
				a.mu.Unlock()
				return
			}
			a.mu.Lock()
			a.current = ch
			a.mu.Unlock()
			select {
			case a.updates <- ch:
			default: // a slow consumer only sees the freshest update
				select {
				case <-a.updates:
				default:
				}
				a.updates <- ch
			}
		case TypeError:
			a.mu.Lock()
			a.readErr = fmt.Errorf("ctlnet: controller rejected: %s", env.Error.Reason)
			a.mu.Unlock()
			return
		default:
			// Agents ignore other message types.
		}
	}
}

func channelFromAssign(as *Assign) (spectrum.Channel, error) {
	switch as.WidthMHz {
	case 20:
		return spectrum.NewChannel20(spectrum.ChannelID(as.Primary)), nil
	case 40:
		if as.Secondary == 0 || as.Secondary == as.Primary {
			return spectrum.Channel{}, fmt.Errorf("ctlnet: malformed 40 MHz assignment")
		}
		return spectrum.NewChannel40(spectrum.ChannelID(as.Primary), spectrum.ChannelID(as.Secondary)), nil
	default:
		return spectrum.Channel{}, fmt.Errorf("ctlnet: bad width %d", as.WidthMHz)
	}
}

// SendReport streams one measurement report. The APID field is filled in.
func (a *Agent) SendReport(rep Report) error {
	rep.APID = a.apID
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return writeMsg(a.conn, &Envelope{Type: TypeReport, Report: &rep})
}

// Updates returns the channel on which new assignments arrive. Only the
// freshest assignment is retained for slow consumers.
func (a *Agent) Updates() <-chan spectrum.Channel { return a.updates }

// Current returns the last assigned channel (zero before the first
// assignment).
func (a *Agent) Current() spectrum.Channel {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current
}

// Err returns the terminal read error, if the session ended.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.readErr
}

// Close tears the connection down and waits for the reader.
func (a *Agent) Close() error {
	err := a.conn.Close()
	<-a.done
	return err
}
