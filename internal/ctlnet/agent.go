package ctlnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// DefaultHeartbeatInterval is how often an agent pings the controller. It
// must stay well under the controller's PeerTimeout (a third or less) so a
// single delayed ping never looks like a dead peer.
const DefaultHeartbeatInterval = 15 * time.Second

// AgentOptions tunes an agent session's liveness machinery. The zero value
// picks the defaults; negative durations disable the corresponding feature.
type AgentOptions struct {
	// HeartbeatInterval is the ping cadence. Zero means
	// DefaultHeartbeatInterval; negative disables heartbeats.
	HeartbeatInterval time.Duration
	// PeerTimeout is the read deadline between inbound messages. The
	// controller's pong replies refresh it, so it should be at least 3x
	// HeartbeatInterval. Zero means DefaultPeerTimeout; negative disables
	// read deadlines.
	PeerTimeout time.Duration
	// WriteTimeout bounds each outbound write. Zero means
	// DefaultWriteTimeout; negative disables write deadlines.
	WriteTimeout time.Duration
	// Frame selects the wire framing the agent offers in its hello: zero
	// and FrameV2 request batched binary frames (a v1 controller simply
	// never acks, and the session stays on JSON lines); FrameV1 pins
	// newline-delimited JSON.
	Frame int
	// ReadBufBytes sizes the connection's buffered reader. Zero means
	// 64 KiB; fleet-scale harnesses shrink it so tens of thousands of
	// in-process agents stay affordable.
	ReadBufBytes int
	// Obs receives session metrics (heartbeat RTTs, wire bytes); nil
	// means obs.Default.
	Obs *obs.Registry
}

// Agent is the AP-side endpoint: it says hello, streams reports, and
// receives channel assignments. A background heartbeat keeps the session
// alive and lets both ends detect a dead peer within PeerTimeout.
//
// All writes after the hello flow through a per-connection outbox that
// batches pending reports and heartbeats into one write, and — once the
// controller acks frame v2 — encodes them as binary frames.
type Agent struct {
	apID string
	conn net.Conn
	r    *bufio.Reader
	dec  *frameDecoder
	ob   *outbox
	opts AgentOptions

	rttHist *obs.Histogram

	mu      sync.Mutex
	seq     uint64 // last report sequence stamped
	current spectrum.Channel
	updates chan spectrum.Channel
	readErr error
	done    chan struct{}
	// Heartbeat RTT bookkeeping: the in-flight ping's seq and send time
	// (pings are strictly sequential, so one slot suffices).
	pingSeq uint64
	pingAt  time.Time
	lastRTT time.Duration
}

// Dial connects to the controller and performs the hello exchange with
// default options.
func Dial(addr string, hello Hello) (*Agent, error) {
	return DialOpts(addr, hello, AgentOptions{})
}

// DialOpts is Dial with explicit session options.
func DialOpts(addr string, hello Hello, opts AgentOptions) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewAgentOpts(conn, hello, opts)
}

// NewAgent runs the agent protocol over an existing connection (tests use
// net.Pipe) with default options.
func NewAgent(conn net.Conn, hello Hello) (*Agent, error) {
	return NewAgentOpts(conn, hello, AgentOptions{})
}

// agentWire bundles the agent-side wire counters, bound once per registry.
type agentWire struct {
	out *outboxMetrics
	rx  *obs.Counter
}

var agentWireCache sync.Map // *obs.Registry → *agentWire

func agentWireMetrics(reg *obs.Registry) *agentWire {
	if w, ok := agentWireCache.Load(reg); ok {
		return w.(*agentWire)
	}
	w := &agentWire{
		out: &outboxMetrics{
			txBytes: reg.Counter("acorn_ctlnet_agent_tx_bytes_total",
				"bytes written to the controller by agents"),
			txBatches: reg.Counter("acorn_ctlnet_agent_tx_batches_total",
				"batched writes to the controller by agents"),
			txMsgs: reg.Counter("acorn_ctlnet_agent_tx_msgs_total",
				"messages written to the controller by agents"),
			reportsCoalesced: reg.Counter("acorn_ctlnet_agent_reports_coalesced_total",
				"reports replaced latest-wins in an agent outbox before hitting the wire"),
			reportsSame: reg.Counter("acorn_ctlnet_agent_reports_same_total",
				"unchanged reports collapsed to a seq-only report-same frame (v2)"),
		},
		rx: reg.Counter("acorn_ctlnet_agent_rx_bytes_total",
			"bytes read from the controller by agents"),
	}
	actual, _ := agentWireCache.LoadOrStore(reg, w)
	return actual.(*agentWire)
}

// NewAgentOpts runs the agent protocol over an existing connection. The
// hello is sent immediately; a background reader collects assignments and a
// background pinger keeps the session alive.
func NewAgentOpts(conn net.Conn, hello Hello, opts AgentOptions) (*Agent, error) {
	if hello.APID == "" {
		conn.Close()
		return nil, fmt.Errorf("ctlnet: agent requires an AP id")
	}
	reg := obs.Or(opts.Obs)
	wire := agentWireMetrics(reg)
	rbuf := opts.ReadBufBytes
	if rbuf <= 0 {
		rbuf = 64 << 10
	}
	a := &Agent{
		apID: hello.APID,
		conn: conn,
		r:    bufio.NewReaderSize(&countingReader{r: conn, c: wire.rx}, rbuf),
		dec:  &frameDecoder{},
		ob:   newOutbox(conn, timeout(opts.WriteTimeout, DefaultWriteTimeout), wire.out),
		opts: opts,
		rttHist: reg.Histogram("acorn_ctlnet_heartbeat_rtt_seconds",
			"agent-measured ping/pong round-trip time",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		updates: make(chan spectrum.Channel, 1),
		done:    make(chan struct{}),
	}
	if opts.Frame != FrameV1 {
		hello.Frame = FrameV2
	}
	if err := a.ob.writeDirect(&Envelope{Type: TypeHello, Hello: &hello}); err != nil {
		conn.Close()
		return nil, err
	}
	go a.readLoop()
	if hb := timeout(opts.HeartbeatInterval, DefaultHeartbeatInterval); hb > 0 {
		go a.pingLoop(hb)
	}
	return a, nil
}

// pingLoop enqueues a heartbeat every interval until the session ends. A
// dead outbox (failed write) tears the connection down so the read loop
// notices promptly.
func (a *Agent) pingLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-a.done:
			return
		case <-t.C:
			seq++
			a.mu.Lock()
			a.pingSeq = seq
			a.pingAt = time.Now()
			a.mu.Unlock()
			if err := a.ob.enqueuePing(seq); err != nil {
				a.conn.Close()
				return
			}
		}
	}
}

func (a *Agent) readLoop() {
	defer close(a.done)
	peerTimeout := timeout(a.opts.PeerTimeout, DefaultPeerTimeout)
	for {
		if peerTimeout > 0 {
			_ = a.conn.SetReadDeadline(time.Now().Add(peerTimeout))
		}
		env, err := readMsgAny(a.r, a.dec)
		if err != nil {
			a.mu.Lock()
			a.readErr = err
			a.mu.Unlock()
			return
		}
		switch env.Type {
		case TypeAssign:
			ch, err := channelFromAssign(env.Assign)
			if err != nil {
				a.mu.Lock()
				a.readErr = err
				a.mu.Unlock()
				return
			}
			a.mu.Lock()
			a.current = ch
			a.mu.Unlock()
			a.publish(ch)
		case TypeError:
			a.mu.Lock()
			a.readErr = fmt.Errorf("ctlnet: controller rejected: %s", env.Error.Reason)
			a.mu.Unlock()
			return
		case TypePong:
			// Match the pong against the in-flight ping to measure the
			// heartbeat round trip.
			var rtt time.Duration
			a.mu.Lock()
			if env.Pong != nil && env.Pong.Seq == a.pingSeq && !a.pingAt.IsZero() {
				rtt = time.Since(a.pingAt)
				a.lastRTT = rtt
				a.pingAt = time.Time{}
			}
			a.mu.Unlock()
			if rtt > 0 {
				a.rttHist.Observe(rtt.Seconds())
			}
		case TypeFrame:
			// The controller accepts binary frames: flip our writes to v2.
			if env.Frame.V >= FrameV2 {
				a.ob.setV2()
			}
		default:
			// Any future message type only matters for the read deadline
			// refresh above.
		}
	}
}

// publish coalesces assignments latest-wins into the capacity-1 updates
// channel: a slow consumer sees only the freshest assignment, and a fast
// one sees every value it can keep up with. Nothing is ever dropped in
// favor of an older value. Single producer (the read loop), so the
// blocking send after a drain cannot deadlock.
func (a *Agent) publish(ch spectrum.Channel) {
	select {
	case a.updates <- ch:
	default:
		select {
		case <-a.updates:
		default:
		}
		a.updates <- ch
	}
}

func channelFromAssign(as *Assign) (spectrum.Channel, error) {
	switch as.WidthMHz {
	case 20:
		return spectrum.NewChannel20(spectrum.ChannelID(as.Primary)), nil
	case 40:
		if as.Secondary == 0 || as.Secondary == as.Primary {
			return spectrum.Channel{}, fmt.Errorf("ctlnet: malformed 40 MHz assignment")
		}
		return spectrum.NewChannel40(spectrum.ChannelID(as.Primary), spectrum.ChannelID(as.Secondary)), nil
	default:
		return spectrum.Channel{}, fmt.Errorf("ctlnet: bad width %d", as.WidthMHz)
	}
}

// SendReport streams one measurement report. The APID field is filled in;
// so is Seq when zero (a caller-provided Seq — e.g. a reconnect replay —
// is preserved). Delivery is asynchronous through the outbox: a report
// still queued when the next one arrives is replaced latest-wins, and a
// write failure kills the session (the caller's reconnect machinery
// replays the last report).
func (a *Agent) SendReport(rep Report) error {
	rep.APID = a.apID
	a.mu.Lock()
	if rep.Seq == 0 {
		a.seq++
		rep.Seq = a.seq
	} else if rep.Seq > a.seq {
		a.seq = rep.Seq
	}
	a.mu.Unlock()
	return a.ob.enqueueReport(&rep)
}

// Updates returns the channel on which new assignments arrive. Only the
// freshest assignment is retained for slow consumers.
func (a *Agent) Updates() <-chan spectrum.Channel { return a.updates }

// Current returns the last assigned channel (zero before the first
// assignment).
func (a *Agent) Current() spectrum.Channel {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current
}

// LastRTT returns the most recent heartbeat round-trip time (zero before
// the first pong).
func (a *Agent) LastRTT() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastRTT
}

// Err returns the terminal read error, if the session ended.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.readErr
}

// Done is closed when the session's read loop exits — on Close, peer
// disconnect, protocol error, or a missed-heartbeat timeout.
func (a *Agent) Done() <-chan struct{} { return a.done }

// Close tears the connection down and waits for the reader.
func (a *Agent) Close() error {
	err := a.conn.Close()
	<-a.done
	return err
}
