package ctlnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// Backoff parameterizes jittered exponential retry delays.
type Backoff struct {
	// Min is the first retry delay. Zero means 500ms.
	Min time.Duration
	// Max caps the delay growth. Zero means 1 minute.
	Max time.Duration
	// Factor multiplies the delay after each failed attempt. Zero means 2.
	Factor float64
	// Jitter is the +/- fraction applied to each delay so a fleet of APs
	// restarting together does not reconnect in lockstep. Zero means 0.2;
	// negative disables jitter.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Min <= 0 {
		b.Min = 500 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Minute
	}
	if b.Max < b.Min {
		b.Max = b.Min
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// next grows a delay toward Max.
func (b Backoff) next(d time.Duration) time.Duration {
	d = time.Duration(float64(d) * b.Factor)
	if d > b.Max {
		d = b.Max
	}
	return d
}

// jittered spreads a delay by +/- Jitter.
func (b Backoff) jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if b.Jitter <= 0 {
		return d
	}
	spread := 1 + b.Jitter*(2*rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// ReconnectOptions tunes a ReconnectingAgent.
type ReconnectOptions struct {
	// Backoff bounds the retry delays between connection attempts.
	Backoff Backoff
	// Agent is forwarded to every underlying session.
	Agent AgentOptions
	// Dial, when non-nil, replaces net.Dial (tests inject faulty
	// transports here). It must honor ctx cancellation.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Log, when non-nil, receives leveled diagnostic lines (retries at
	// warn level).
	Log *obs.Logger
	// Obs receives supervisor metrics (dial attempts, failures, sessions,
	// per-AP liveness); nil means obs.Default. Also forwarded to the
	// underlying agent sessions when Agent.Obs is unset.
	Obs *obs.Registry
	// Seed drives the backoff jitter; zero seeds from the AP id so
	// distinct APs still spread out.
	Seed int64
}

// ReconnectingAgent keeps an agent session alive across controller
// restarts and network faults: it dials with jittered exponential backoff,
// re-sends its hello on every attempt, and replays the last report (same
// sequence number) after each reconnect so the controller's view recovers
// without waiting for the next measurement cycle.
type ReconnectingAgent struct {
	apID    string
	updates chan spectrum.Channel
	cancel  context.CancelFunc
	done    chan struct{}

	mu         sync.Mutex
	cur        *Agent
	current    spectrum.Channel
	lastReport *Report
	seq        uint64
	sessions   int
	lastErr    error
	closed     bool
}

// NewReconnectingAgent starts the supervisor and returns immediately; the
// first connection attempt happens in the background. Close (or canceling
// ctx) stops it.
func NewReconnectingAgent(ctx context.Context, addr string, hello Hello, opts ReconnectOptions) (*ReconnectingAgent, error) {
	if hello.APID == "" {
		return nil, fmt.Errorf("ctlnet: reconnecting agent requires an AP id")
	}
	ctx, cancel := context.WithCancel(ctx)
	ra := &ReconnectingAgent{
		apID:    hello.APID,
		updates: make(chan spectrum.Channel, 1),
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	go ra.run(ctx, addr, hello, opts)
	return ra, nil
}

func (ra *ReconnectingAgent) run(ctx context.Context, addr string, hello Hello, opts ReconnectOptions) {
	defer close(ra.done)
	log := opts.Log
	if log == nil {
		log = obs.Nop
	}
	log = log.With("ap", ra.apID)
	// Retry chatter is token-bucketed per agent: a fleet-wide controller
	// outage otherwise logs every retry of every agent, and at 10k agents
	// that is its own storm. The suppressed count rides the next line.
	rl := log.Limited(1, 3)
	reg := obs.Or(opts.Obs)
	if opts.Agent.Obs == nil {
		opts.Agent.Obs = opts.Obs
	}
	var (
		dialAttempts = reg.Counter("acorn_ctlnet_dial_attempts_total",
			"controller connection attempts by reconnecting agents")
		dialFailures = reg.Counter("acorn_ctlnet_dial_failures_total",
			"failed controller connection attempts (dial or hello)")
		sessions = reg.Counter("acorn_ctlnet_sessions_total",
			"agent sessions successfully established")
		sessionDrops = reg.Counter("acorn_ctlnet_session_drops_total",
			"established agent sessions that ended with an error")
		agentUp = reg.GaugeVec("acorn_ctlnet_agent_up",
			"1 while this AP's agent holds a live controller session", "ap").
			With(ra.apID)
	)
	agentUp.Set(0)
	dial := opts.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	seed := opts.Seed
	if seed == 0 {
		for _, c := range hello.APID {
			seed = seed*131 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	bo := opts.Backoff.withDefaults()
	delay := bo.Min
	for ctx.Err() == nil {
		dialAttempts.Inc()
		conn, err := dial(ctx, addr)
		if err != nil {
			dialFailures.Inc()
			ra.setErr(err)
			rl.Warnf("reconnect dial: %v (retry in %v)", err, delay)
			if !sleepCtx(ctx, bo.jittered(delay, rng)) {
				return
			}
			delay = bo.next(delay)
			continue
		}
		ag, err := NewAgentOpts(conn, hello, opts.Agent)
		if err != nil {
			dialFailures.Inc()
			ra.setErr(err)
			rl.Warnf("reconnect hello: %v (retry in %v)", err, delay)
			if !sleepCtx(ctx, bo.jittered(delay, rng)) {
				return
			}
			delay = bo.next(delay)
			continue
		}
		delay = bo.Min
		sessions.Inc()
		agentUp.Set(1)
		log.Infof("session established")

		ra.mu.Lock()
		ra.cur = ag
		ra.sessions++
		replay := ra.lastReport
		ra.mu.Unlock()
		if replay != nil {
			// Replay keeps its original Seq: the controller treats an
			// equal sequence as current, never as a rollback.
			if err := ag.SendReport(*replay); err != nil {
				rl.Warnf("reconnect replay: %v", err)
			}
		}

	session:
		for {
			select {
			case <-ctx.Done():
				break session
			case ch := <-ag.Updates():
				ra.setCurrent(ch)
			case <-ag.Done():
				break session
			}
		}
		// The read loop may have published a final assignment between the
		// last receive and Done closing.
		select {
		case ch := <-ag.Updates():
			ra.setCurrent(ch)
		default:
		}
		ra.mu.Lock()
		ra.cur = nil
		ra.mu.Unlock()
		ag.Close()
		agentUp.Set(0)
		if ctx.Err() != nil {
			return
		}
		sessionDrops.Inc()
		ra.setErr(ag.Err())
		rl.Warnf("session ended: %v (retry in %v)", ag.Err(), delay)
		if !sleepCtx(ctx, bo.jittered(delay, rng)) {
			return
		}
		delay = bo.next(delay)
	}
}

// sleepCtx waits for d or the context, reporting whether the full delay
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (ra *ReconnectingAgent) setCurrent(ch spectrum.Channel) {
	ra.mu.Lock()
	ra.current = ch
	ra.mu.Unlock()
	select {
	case ra.updates <- ch:
	default:
		select {
		case <-ra.updates:
		default:
		}
		ra.updates <- ch
	}
}

func (ra *ReconnectingAgent) setErr(err error) {
	ra.mu.Lock()
	ra.lastErr = err
	ra.mu.Unlock()
}

// SendReport stamps and remembers the report, then sends it when a session
// is live. When disconnected the report is only stored; the supervisor
// replays it right after the next successful hello, so the call still
// succeeds (best-effort delivery, guaranteed replay).
func (ra *ReconnectingAgent) SendReport(rep Report) error {
	ra.mu.Lock()
	if ra.closed {
		ra.mu.Unlock()
		return fmt.Errorf("ctlnet: reconnecting agent closed")
	}
	rep.APID = ra.apID
	ra.seq++
	rep.Seq = ra.seq
	ra.lastReport = &rep
	ag := ra.cur
	ra.mu.Unlock()
	if ag != nil {
		// A failed send kills the session; the supervisor replays the
		// stored report after reconnecting, so it is not lost.
		_ = ag.SendReport(rep)
	}
	return nil
}

// Updates returns the channel on which assignments arrive, coalesced
// latest-wins across all underlying sessions.
func (ra *ReconnectingAgent) Updates() <-chan spectrum.Channel { return ra.updates }

// Current returns the last assignment received on any session.
func (ra *ReconnectingAgent) Current() spectrum.Channel {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.current
}

// Connected reports whether a session is currently established.
func (ra *ReconnectingAgent) Connected() bool {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.cur != nil
}

// Sessions returns how many sessions have been successfully established.
func (ra *ReconnectingAgent) Sessions() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.sessions
}

// LastErr returns the most recent dial or session error, nil if none.
func (ra *ReconnectingAgent) LastErr() error {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.lastErr
}

// Close stops the supervisor, tears down any live session, and waits.
func (ra *ReconnectingAgent) Close() error {
	ra.mu.Lock()
	ra.closed = true
	ra.mu.Unlock()
	ra.cancel()
	<-ra.done
	return nil
}
