package ctlnet

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"acorn/internal/core"
	"acorn/internal/faultnet"
	"acorn/internal/obs"
	"acorn/internal/spectrum"
)

// vecSum sums a labelled family's children by metric name (0 if absent).
func vecSum(reg *obs.Registry, name string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			total := 0.0
			for _, v := range s.Series {
				total += v
			}
			return total
		}
	}
	return 0
}

// reportRecv reads the stored receive time of an AP's report.
func reportRecv(s *Server, apID string) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.reports[apID]
	return sr.recv, ok
}

// TestReconnectReplayStaysQuarantined is the interaction the TTL quarantine
// exists for: a ReconnectingAgent replays its last report (same Seq) after a
// reconnect. The replay must be accepted as the last-known-good view but
// must NOT refresh the report's age — otherwise a crash-looping AP could
// launder an arbitrarily stale measurement back to "fresh" forever. A
// genuinely new report (next Seq) recovers the AP.
func TestReconnectReplayStaysQuarantined(t *testing.T) {
	const ttl = 300 * time.Millisecond
	s, addr, _ := quarantineServer(t, ttl)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ra, err := NewReconnectingAgent(ctx, addr, Hello{APID: "AP1", TxPowerDBm: 18}, ReconnectOptions{
		Backoff: Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Agent: AgentOptions{
			HeartbeatInterval: 20 * time.Millisecond,
			PeerTimeout:       2 * time.Second,
			WriteTimeout:      time.Second,
		},
		Obs: s.Obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()

	if err := ra.SendReport(report(nil, 25)); err != nil { // Seq 1
		t.Fatal(err)
	}
	waitForReports(t, s, 1)
	recv0, ok := reportRecv(s, "AP1")
	if !ok {
		t.Fatal("report not stored")
	}

	// Let the view age past the TTL, then kill the server-side session: the
	// agent reconnects and replays the Seq-1 report.
	time.Sleep(ttl + 50*time.Millisecond)
	s.mu.Lock()
	ac := s.agents["AP1"]
	s.mu.Unlock()
	if ac == nil {
		t.Fatal("no live session to kill")
	}
	ac.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for counterValue(s.Obs, "acorn_ctlnet_reports_replayed_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect replay never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, _ := reportRecv(s, "AP1"); !got.Equal(recv0) {
		t.Fatalf("replay refreshed the report's age: recv %v -> %v", recv0, got)
	}
	// The replayed view is still stale, and it is the only view: refuse.
	if _, err := s.Reallocate(); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("reallocate after replay: err = %v, want stale refusal", err)
	}

	// The next fresh measurement (Seq 2) recovers the AP.
	mark := time.Now()
	if err := ra.SendReport(report(nil, 26)); err != nil {
		t.Fatal(err)
	}
	waitForFreshReports(t, s, mark, "AP1")
	if _, err := s.Reallocate(); err != nil {
		t.Fatalf("reallocate after fresh report: %v", err)
	}
}

// streamServer starts a stream-enabled server on a loopback listener,
// optionally wrapped by a fault injector. configure (may be nil) runs
// before Serve so no field write races the handler goroutines.
func streamServer(t *testing.T, cfg StreamConfig, inj *faultnet.Injector, configure func(*Server)) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(1)
	s.Obs = obs.NewRegistry()
	s.Stream = cfg
	if configure != nil {
		configure(s)
	}
	lis := net.Listener(l)
	if inj != nil {
		lis = inj.WrapListener(l)
	}
	go func() { _ = s.Serve(lis) }()
	t.Cleanup(func() { _ = s.Close() })
	return s, l.Addr().String()
}

// TestStreamModeReallocatesOnReports: with Stream.Enabled, reports alone —
// no Reallocate call — must produce assignments: the reports mark their APs
// dirty, the consumer wakes, and a neighbourhood pass allocates and pushes.
func TestStreamModeReallocatesOnReports(t *testing.T) {
	s, addr := streamServer(t, StreamConfig{
		Enabled:        true,
		Debounce:       5 * time.Millisecond,
		WatchdogPeriod: -1,
		Gate:           core.GateOptions{Streak: 1, RatePerHour: 3600, Burst: 100},
	}, nil, nil)

	ids := []string{"AP1", "AP2"}
	hears := map[string][]string{"AP1": {"AP2"}, "AP2": {"AP1"}}
	agents := map[string]*Agent{}
	for _, id := range ids {
		a, err := Dial(addr, Hello{APID: id, TxPowerDBm: 18})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[id] = a
		if err := a.SendReport(report(hears[id], 25, 22)); err != nil {
			t.Fatal(err)
		}
	}

	// Both agents must receive an assignment without anyone calling
	// Reallocate, and contending APs must not share spectrum.
	got := map[string]spectrum.Channel{}
	for id, a := range agents {
		got[id] = waitAssign(t, a)
	}
	if got["AP1"].Conflicts(got["AP2"]) {
		t.Fatalf("contending APs share spectrum: %v vs %v", got["AP1"], got["AP2"])
	}

	st := s.StreamStats()
	if st.Passes == 0 {
		t.Errorf("no streaming pass ran: %+v", st)
	}
	if st.Marks < 2 {
		t.Errorf("marks = %d, want >= 2", st.Marks)
	}
	if n := vecSum(s.Obs, "acorn_ctlnet_stream_passes_total"); n == 0 {
		t.Error("acorn_ctlnet_stream_passes_total did not advance")
	}
}

// assertServerSwitchRate checks the hard anti-flap guarantee on the gate's
// committed switch history: for every AP and every pair of switch times, the
// count inside the window never exceeds burst + rate·window.
func assertServerSwitchRate(t *testing.T, times map[string][]time.Time, ratePerHour float64, burst int) {
	t.Helper()
	for ap, ts := range times {
		for i := range ts {
			for j := i; j < len(ts); j++ {
				w := ts[j].Sub(ts[i])
				n := j - i + 1
				if lim := float64(burst) + ratePerHour*w.Hours(); float64(n) > lim+1e-9 {
					t.Fatalf("%s: %d switches in %v exceeds burst %d + rate %.1f/h",
						ap, n, w, burst, ratePerHour)
				}
			}
		}
	}
}

// TestStreamChaosStorm is the chaos acceptance run for the event-driven
// controller: three mutually contending reconnecting agents report through
// injected connection resets (>= 20% of connections), per-connection
// latency with jitter, short writes, and corruption, including a 10x report
// storm phase — while the server reallocates purely event-driven. After the
// injector is disabled the system must converge to a conflict-free
// assignment every agent holds, with the per-AP switch-rate bound intact
// and the dirty queue structurally bounded.
func TestStreamChaosStorm(t *testing.T) {
	const (
		ratePerHour = 1800.0 // 1 switch per 2s sustained
		burst       = 5
	)
	inj := faultnet.NewInjector(faultnet.Config{
		Seed:           11,
		ConnResetProb:  0.5,
		ResetAfterOps:  12,
		LatencyMin:     200 * time.Microsecond,
		LatencyMax:     time.Millisecond,
		Jitter:         500 * time.Microsecond,
		ShortWriteProb: 0.02,
		CorruptProb:    0.02,
	})
	s, addr := streamServer(t, StreamConfig{
		Enabled:        true,
		Debounce:       10 * time.Millisecond,
		WatchdogPeriod: 2 * time.Second,
		Gate: core.GateOptions{
			RatePerHour: ratePerHour,
			Burst:       burst,
			FlapWindow:  time.Hour, // keep the whole switch history for the assert
		},
	}, inj, func(s *Server) {
		s.HelloTimeout = 300 * time.Millisecond
		s.PeerTimeout = 500 * time.Millisecond
		s.WriteTimeout = time.Second
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ids := []string{"AP1", "AP2", "AP3"}
	hears := map[string][]string{
		"AP1": {"AP2", "AP3"},
		"AP2": {"AP1", "AP3"},
		"AP3": {"AP1", "AP2"},
	}
	// interval is the reporting cadence, dropped 10x during the storm; while
	// storming, AP3's client SNRs toggle on alternate reports between
	// healthy and bonding-collapsed, so the allocator's width preference
	// flip-flaps and the search keeps proposing switches the gate must
	// suppress.
	var intervalMu sync.Mutex
	interval := 20 * time.Millisecond
	storming := false
	setPhase := func(d time.Duration, storm bool) {
		intervalMu.Lock()
		interval = d
		storming = storm
		intervalMu.Unlock()
	}
	getPhase := func() (time.Duration, bool) {
		intervalMu.Lock()
		defer intervalMu.Unlock()
		return interval, storming
	}

	agents := map[string]*ReconnectingAgent{}
	var wg sync.WaitGroup
	for i, id := range ids {
		ra, err := NewReconnectingAgent(ctx, addr, Hello{APID: id, TxPowerDBm: 18}, ReconnectOptions{
			Backoff: Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Agent: AgentOptions{
				HeartbeatInterval: 20 * time.Millisecond,
				PeerTimeout:       500 * time.Millisecond,
				WriteTimeout:      500 * time.Millisecond,
			},
			Obs:  s.Obs,
			Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ra.Close()
		agents[id] = ra
		wg.Add(1)
		go func(id string, ra *ReconnectingAgent) {
			defer wg.Done()
			n := 0
			for {
				d, storm := getPhase()
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
					n++
					rep := report(hears[id], 25, 22)
					if storm && id == "AP3" && n%2 == 1 {
						// Bonding collapse: 20 MHz beats 40 for this view.
						rep = report(hears[id], -1.5, -1.0)
					}
					_ = ra.SendReport(rep)
				}
			}
		}(id, ra)
	}

	// Chaos phase 1: normal cadence under faults. Phase 2: 10x report storm
	// with a flip-flapping hear-graph.
	time.Sleep(800 * time.Millisecond)
	setPhase(2*time.Millisecond, true)
	stormUntil := time.Now().Add(800 * time.Millisecond)
	chaosCap := time.Now().Add(10 * time.Second)
	for time.Now().Before(stormUntil) {
		time.Sleep(50 * time.Millisecond)
	}
	setPhase(20*time.Millisecond, false)
	// Keep the chaos going until the reset quota is met.
	for {
		st := inj.Stats()
		if st.Resets > 0 && st.Resets*5 >= st.Conns && st.LatencyOps > 0 {
			break
		}
		if time.Now().After(chaosCap) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fst := inj.Stats()
	t.Logf("chaos stats: %+v", fst)
	if fst.Resets == 0 || fst.Resets*5 < fst.Conns {
		t.Fatalf("fewer than 20%% of connections reset: %+v", fst)
	}
	if fst.LatencyOps == 0 {
		t.Fatalf("latency injection never fired: %+v", fst)
	}

	// Calm the network; the stream must converge on its own (the watchdog's
	// periodic full pass re-pushes assignments to agents that missed one).
	inj.Disable()
	deadline := time.Now().Add(20 * time.Second)
	converged := false
	for time.Now().Before(deadline) {
		s.mu.Lock()
		want := make(map[string]spectrum.Channel, len(s.assign))
		for k, v := range s.assign {
			want[k] = v
		}
		s.mu.Unlock()
		if len(want) == len(ids) {
			ok := true
			for i := 0; i < len(ids) && ok; i++ {
				if agents[ids[i]].Current() != want[ids[i]] {
					ok = false
				}
				for j := i + 1; j < len(ids) && ok; j++ {
					if want[ids[i]].Conflicts(want[ids[j]]) {
						ok = false
					}
				}
			}
			if ok {
				converged = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := s.StreamStats()
	t.Logf("stream stats: %+v", st)
	if !converged {
		for id, ra := range agents {
			t.Logf("%s: current=%v connected=%v sessions=%d lastErr=%v",
				id, ra.Current(), ra.Connected(), ra.Sessions(), ra.LastErr())
		}
		t.Fatal("stream mode never converged after the chaos calmed")
	}
	cancel()
	wg.Wait()

	// The event path did the work: passes ran, the storm coalesced, and the
	// dirty set never outgrew the AP population (it is keyed by AP).
	if st.Passes == 0 {
		t.Error("no streaming passes ran")
	}
	if st.Coalesced == 0 {
		t.Error("report storm produced no coalescing")
	}
	if st.DirtyDepth > len(ids) {
		t.Errorf("dirty depth %d exceeds AP count %d", st.DirtyDepth, len(ids))
	}
	if st.Marks < 100 {
		t.Errorf("marks = %d, want a storm's worth (>= 100)", st.Marks)
	}
	// The flip-flapping view made the search propose switches; the gate saw
	// them, and whatever it approved stayed inside the rate bound.
	if st.Gate.Proposals == 0 {
		t.Error("the storm never exercised the switch gate")
	}

	// Zero switch-rate violations, checked on the gate's committed history.
	assertServerSwitchRate(t, s.GateSwitchTimes(), ratePerHour, burst)
}

// TestServerGateStreakHysteresis drives the gated install path
// deterministically, without the consumer goroutine: a view change that
// makes the allocator want to move an already-assigned AP must survive K
// consecutive evaluations before the switch lands.
func TestServerGateStreakHysteresis(t *testing.T) {
	s := NewServer(1)
	s.Obs = obs.NewRegistry()
	s.Stream = StreamConfig{Enabled: true, Gate: core.GateOptions{
		Streak:      2,
		RatePerHour: 3600,
		Burst:       100,
		FlapWindow:  time.Hour,
	}}
	setReport := func(id string, rep Report) {
		s.mu.Lock()
		s.hellos[id] = Hello{APID: id, TxPowerDBm: 18}
		rep.APID = id
		s.reports[id] = storedReport{rep: rep, recv: time.Now()}
		s.mu.Unlock()
	}
	// Two mutually contending APs, initialized onto valid channels.
	setReport("AP1", report([]string{"AP2"}, 25, 22))
	setReport("AP2", report([]string{"AP1"}, 25, 22))
	first, err := s.Reallocate()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("want 2 assignments, got %v", first)
	}

	// Force a conflicting incumbent assignment — the state a flap or a bad
	// measurement epoch could have left behind. The allocator now wants to
	// move one AP off the shared channel.
	s.mu.Lock()
	s.assign["AP2"] = s.assign["AP1"]
	s.mu.Unlock()
	first["AP2"] = first["AP1"]

	// First streamed evaluation: the proposal is new, so the streak rule
	// vetoes it and the assignment must not move.
	second, err := s.reallocate(nil, false, obs.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	if second["AP1"] != first["AP1"] || second["AP2"] != first["AP2"] {
		t.Fatalf("switch landed before the streak was sustained: %v -> %v", first, second)
	}
	if st := s.StreamStats(); st.Gate.StreakVetoes == 0 {
		t.Fatalf("no streak veto recorded: %+v", st.Gate)
	}

	// Second consecutive evaluation of the same proposal: it commits, and
	// the contending APs separate.
	third, err := s.reallocate(nil, false, obs.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	if third["AP1"].Conflicts(third["AP2"]) {
		t.Fatalf("sustained proposal still not applied: %v", third)
	}
	st := s.StreamStats()
	if st.SwitchesApplied == 0 {
		t.Errorf("no gated switch recorded: %+v", st)
	}
	if counterValue(s.Obs, "acorn_ctlnet_stream_switch_vetoes_total") == 0 {
		t.Error("acorn_ctlnet_stream_switch_vetoes_total did not advance")
	}
}
