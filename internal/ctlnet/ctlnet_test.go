package ctlnet

import (
	"net"
	"strings"
	"testing"
	"time"

	"acorn/internal/spectrum"
)

// startServer listens on a loopback port and returns the server + address.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(1)
	go func() { _ = s.Serve(l) }()
	t.Cleanup(func() { _ = s.Close() })
	return s, l.Addr().String()
}

// waitAssign blocks for the next assignment with a test timeout.
func waitAssign(t *testing.T, a *Agent) spectrum.Channel {
	t.Helper()
	select {
	case ch := <-a.Updates():
		return ch
	case <-time.After(5 * time.Second):
		t.Fatalf("no assignment within timeout (err=%v)", a.Err())
		return spectrum.Channel{}
	}
}

// report builds a Report with the given client SNRs.
func report(hears []string, snrs ...float64) Report {
	rep := Report{Hears: hears}
	for i, snr := range snrs {
		rep.Clients = append(rep.Clients, ClientObs{ClientID: clientName(i), SNR20dB: snr})
	}
	return rep
}

func clientName(i int) string { return string(rune('a' + i)) }

func TestEndToEndAllocation(t *testing.T) {
	s, addr := startServer(t)

	// Two APs out of each other's range: one with good clients, one with
	// clients where bonding collapses.
	a1, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(addr, Hello{APID: "AP2", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	if err := a1.SendReport(report(nil, 30, 28)); err != nil {
		t.Fatal(err)
	}
	if err := a2.SendReport(report(nil, -1.5, -1.0)); err != nil {
		t.Fatal(err)
	}
	// Reports race the Reallocate call; wait until the server has both.
	waitForReports(t, s, 2)

	assigns, err := s.Reallocate()
	if err != nil {
		t.Fatal(err)
	}
	if len(assigns) != 2 {
		t.Fatalf("want 2 assignments, got %d", len(assigns))
	}
	ch1 := waitAssign(t, a1)
	ch2 := waitAssign(t, a2)
	if ch1.Width != spectrum.Width40 {
		t.Errorf("good cell assigned %v, want 40 MHz", ch1)
	}
	if ch2.Width != spectrum.Width20 {
		t.Errorf("poor cell assigned %v, want 20 MHz", ch2)
	}
	if a1.Current() != ch1 {
		t.Error("Current() out of sync with Updates()")
	}
}

func TestContendingAgentsGetDisjointChannels(t *testing.T) {
	s, addr := startServer(t)
	var agents []*Agent
	for _, id := range []string{"AP1", "AP2", "AP3"} {
		a, err := Dial(addr, Hello{APID: id, TxPowerDBm: 18})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents = append(agents, a)
	}
	hears := map[string][]string{
		"AP1": {"AP2", "AP3"},
		"AP2": {"AP1", "AP3"},
		"AP3": {"AP1", "AP2"},
	}
	for i, id := range []string{"AP1", "AP2", "AP3"} {
		if err := agents[i].SendReport(report(hears[id], 25, 20)); err != nil {
			t.Fatal(err)
		}
	}
	waitForReports(t, s, 3)
	assigns, err := s.Reallocate()
	if err != nil {
		t.Fatal(err)
	}
	// Mutually contending good cells with 12 channels free: the
	// allocation must isolate them.
	ids := []string{"AP1", "AP2", "AP3"}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if assigns[ids[i]].Conflicts(assigns[ids[j]]) {
				t.Errorf("%s and %s share spectrum: %v vs %v",
					ids[i], ids[j], assigns[ids[i]], assigns[ids[j]])
			}
		}
	}
}

func TestReconnectReplaysAssignment(t *testing.T) {
	s, addr := startServer(t)
	a, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendReport(report(nil, 25)); err != nil {
		t.Fatal(err)
	}
	waitForReports(t, s, 1)
	if _, err := s.Reallocate(); err != nil {
		t.Fatal(err)
	}
	first := waitAssign(t, a)
	a.Close()

	// Reconnect: the stored assignment is replayed without a new
	// Reallocate. The old session's teardown races the new hello, so
	// retry until the duplicate-id window has passed.
	var b *Agent
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err = Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-b.Updates():
			if got != first {
				t.Errorf("replayed assignment %v, want %v", got, first)
			}
			b.Close()
			return
		case <-time.After(200 * time.Millisecond):
			if b.Err() == nil {
				// Connected but nothing replayed yet; keep waiting.
				if got := waitAssign(t, b); got != first {
					t.Errorf("replayed assignment %v, want %v", got, first)
				}
				b.Close()
				return
			}
			b.Close() // rejected as duplicate; retry
		}
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect before deadline")
		}
	}
}

func TestDuplicateAPRejected(t *testing.T) {
	_, addr := startServer(t)
	a, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, Hello{APID: "AP1", TxPowerDBm: 18})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The two hellos race; exactly one of the sessions must be rejected
	// as a duplicate.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ag := range []*Agent{a, b} {
			if err := ag.Err(); err != nil {
				if !strings.Contains(err.Error(), "duplicate") {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("duplicate agent was not rejected")
}

func TestMalformedPeerHandled(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage instead of hello: the server must answer with an error (or
	// just close), never hang or crash.
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	if n > 0 && !strings.Contains(string(buf[:n]), "error") {
		t.Errorf("unexpected reply: %q", buf[:n])
	}
}

func TestReallocateWithoutAgents(t *testing.T) {
	s := NewServer(1)
	if _, err := s.Reallocate(); err == nil {
		t.Error("reallocate with no agents should fail")
	}
}

func TestAgentRequiresID(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	if _, err := NewAgent(c1, Hello{}); err == nil {
		t.Error("empty AP id accepted")
	}
}

// waitForReports polls until the server holds n reports.
func waitForReports(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		got := len(s.reports)
		s.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never received %d reports", n)
}
