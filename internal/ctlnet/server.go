package ctlnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"acorn/internal/core"
	"acorn/internal/obs"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/stats"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// Default control-plane timeouts. PeerTimeout should stay comfortably above
// the agents' heartbeat interval (3x or more) so one delayed ping does not
// reap a healthy session.
const (
	DefaultHelloTimeout = 10 * time.Second
	DefaultPeerTimeout  = 90 * time.Second
	DefaultWriteTimeout = 10 * time.Second
)

// Server is the central ACORN controller. It accepts agent connections,
// maintains the latest report per AP, and on Reallocate rebuilds a
// measurement-driven network view, runs Algorithm 2, and pushes the new
// assignments to every connected agent.
//
// Reports survive agent disconnects as a last-known-good view, so a
// flapping AP does not blind the allocator; ReportTTL controls how long
// such a view may feed Reallocate before it is quarantined.
type Server struct {
	// Seed drives the allocation's random initial coloring.
	Seed int64
	// Alloc tunes Algorithm 2 (worker count, period/switch bounds) for
	// every Reallocate. The zero value keeps the defaults.
	Alloc core.AllocOptions
	// Assoc tunes the Algorithm 1 roaming sweep run over the measurement
	// view before each allocation. The zero value keeps the defaults.
	Assoc core.AssocOptions
	// Log, when non-nil, receives leveled diagnostic lines (connects and
	// disconnects at info, protocol trouble and quarantines at warn).
	Log *obs.Logger
	// Obs receives control-plane metrics; nil means obs.Default. Set it
	// before Serve — the metric handles bind lazily on first use.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per reallocation pass (see
	// trace.go for the stage catalog). Build it with NewServerTracer and
	// set it before Serve; nil costs nothing on the hot paths.
	Tracer *obs.Tracer
	// SLO, when non-nil, observes every streaming pass's receipt-to-push
	// latency so a windowed quantile can be held against a budget (and a
	// breach hook can capture a profile). Set before Serve.
	SLO *obs.SLO

	// HelloTimeout bounds how long an accepted connection may sit silent
	// before the hello arrives. Zero means DefaultHelloTimeout; negative
	// disables the deadline.
	HelloTimeout time.Duration
	// PeerTimeout is the read deadline applied between messages after the
	// hello; agents keep the session alive with ping heartbeats. Zero
	// means DefaultPeerTimeout; negative disables the deadline.
	PeerTimeout time.Duration
	// WriteTimeout bounds every outbound write so a stalled peer cannot
	// block pushes forever. Zero means DefaultWriteTimeout; negative
	// disables the deadline.
	WriteTimeout time.Duration
	// ReportTTL is the maximum age a report may reach and still count as
	// a fresh view in Reallocate. Older reports are quarantined: they are
	// still used as the last-known-good fallback (and logged), but if no
	// report at all is fresh, Reallocate refuses to run. Zero disables
	// aging.
	ReportTTL time.Duration
	// Stream, when Enabled, turns on event-driven reallocation: reports
	// mark their AP dirty and a consumer goroutine runs gated,
	// neighbourhood-restricted passes (see stream.go). Set before Serve.
	Stream StreamConfig
	// Shards sizes the inbound accept/IO sharding (see shard.go). The
	// zero value picks min(8, GOMAXPROCS) shards with default queues.
	// Set before Serve.
	Shards ShardConfig

	stream    streamState
	shardSet  []*shard
	shardStop chan struct{}

	mu          sync.Mutex
	agents      map[string]*agentConn // by AP ID
	reports     map[string]storedReport
	hellos      map[string]Hello
	assign      map[string]spectrum.Channel
	lastRealloc time.Time // last successful Reallocate

	metricsOnce sync.Once
	metrics     *serverMetrics

	stormOnce sync.Once
	stormLog  *obs.Logger

	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// serverMetrics bundles the controller's metric handles, bound once
// against the server's registry so hot paths touch only atomics.
type serverMetrics struct {
	reg             *obs.Registry
	agentsConnected *obs.Gauge
	agentConnected  *obs.GaugeVec
	helloRejects    *obs.Counter
	heartbeats      *obs.Counter
	reportsTotal    *obs.Counter
	reportsStale    *obs.Counter
	reportsReplayed *obs.Counter
	quarantined     *obs.Counter
	reallocs        *obs.Counter
	reallocSkipped  *obs.Counter
	pushes          *obs.Counter
	pushErrors      *obs.Counter
	streamDirty     *obs.Gauge
	streamPasses    *obs.CounterVec
	streamFailures  *obs.Counter
	streamWatchdog  *obs.Counter
	streamVetoes    *obs.Counter

	shardReports   *obs.CounterVec
	shardCoalesced *obs.CounterVec
	shardShed      *obs.CounterVec
	shardBatches   *obs.CounterVec

	rxBytes *obs.Counter
	pushWin *obs.Window
	outm    *outboxMetrics
}

// m returns the lazily bound metric handles.
func (s *Server) m() *serverMetrics {
	s.metricsOnce.Do(func() {
		reg := obs.Or(s.Obs)
		s.metrics = &serverMetrics{
			reg: reg,
			agentsConnected: reg.Gauge("acorn_ctlnet_agents_connected",
				"agent sessions currently established"),
			agentConnected: reg.GaugeVec("acorn_ctlnet_agent_connected",
				"per-AP session liveness (1 connected, 0 not)", "ap"),
			helloRejects: reg.Counter("acorn_ctlnet_hello_rejects_total",
				"connections rejected before or at hello"),
			heartbeats: reg.Counter("acorn_ctlnet_heartbeats_total",
				"ping heartbeats received from agents"),
			reportsTotal: reg.Counter("acorn_ctlnet_reports_total",
				"measurement reports accepted"),
			reportsStale: reg.Counter("acorn_ctlnet_reports_stale_total",
				"reports dropped for an out-of-order sequence"),
			reportsReplayed: reg.Counter("acorn_ctlnet_reports_replayed_total",
				"reconnect replays accepted without refreshing the report's age"),
			quarantined: reg.Counter("acorn_ctlnet_reports_quarantined_total",
				"stale reports quarantined past the TTL at reallocation"),
			reallocs: reg.Counter("acorn_ctlnet_reallocations_total",
				"networked reallocations completed"),
			reallocSkipped: reg.Counter("acorn_ctlnet_reallocations_skipped_total",
				"reallocations refused (no agents or all reports stale)"),
			pushes: reg.Counter("acorn_ctlnet_assignment_pushes_total",
				"assignment pushes attempted"),
			pushErrors: reg.Counter("acorn_ctlnet_assignment_push_errors_total",
				"assignment pushes that failed"),
			streamDirty: reg.Gauge("acorn_ctlnet_stream_dirty_aps",
				"APs currently marked dirty awaiting a streaming pass"),
			streamPasses: reg.CounterVec("acorn_ctlnet_stream_passes_total",
				"streaming reallocation passes by scope", "scope"),
			streamFailures: reg.Counter("acorn_ctlnet_stream_pass_failures_total",
				"streaming passes that errored (dirty set requeued)"),
			streamWatchdog: reg.Counter("acorn_ctlnet_stream_watchdog_fires_total",
				"watchdog-forced full passes in stream mode"),
			streamVetoes: reg.Counter("acorn_ctlnet_stream_switch_vetoes_total",
				"proposed channel switches the anti-flap gate refused"),
			shardReports: reg.CounterVec("acorn_ctlnet_shard_reports_total",
				"reports entering each inbound shard queue", "shard"),
			shardCoalesced: reg.CounterVec("acorn_ctlnet_shard_reports_coalesced_total",
				"reports coalesced latest-wins in a shard queue before apply", "shard"),
			shardShed: reg.CounterVec("acorn_ctlnet_shard_reports_shed_total",
				"reports shed oldest-first from a full shard queue", "shard"),
			shardBatches: reg.CounterVec("acorn_ctlnet_shard_batches_total",
				"report batches each shard pump applied to the controller", "shard"),
			rxBytes: reg.Counter("acorn_ctlnet_server_rx_bytes_total",
				"bytes read from agent connections"),
			pushWin: obs.NewWindow(15*time.Minute, 15, nil, nil),
		}
		s.metrics.outm = &outboxMetrics{
			txBytes: reg.Counter("acorn_ctlnet_server_tx_bytes_total",
				"bytes written to agent connections"),
			txBatches: reg.Counter("acorn_ctlnet_server_tx_batches_total",
				"batched writes to agent connections"),
			txMsgs: reg.Counter("acorn_ctlnet_server_tx_msgs_total",
				"messages written to agent connections"),
			pushDeduped: reg.Counter("acorn_ctlnet_pushes_deduped_total",
				"assignment pushes dropped because the connection already holds that assignment"),
			pushCoalesced: reg.Counter("acorn_ctlnet_pushes_coalesced_total",
				"queued assignment pushes replaced latest-wins before hitting the wire"),
			pushErrors:  s.metrics.pushErrors,
			pushWin:     s.metrics.pushWin,
		}
		reg.GaugeFunc("acorn_ctlnet_last_reallocation_age_seconds",
			"seconds since the last successful reallocation (-1 before the first)",
			func() float64 {
				if at, ok := s.LastReallocation(); ok {
					return time.Since(at).Seconds()
				}
				return -1
			})
	})
	return s.metrics
}

// ConnectedAgents returns the AP IDs with a live session, sorted.
func (s *Server) ConnectedAgents() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.agents))
	for id := range s.agents {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// KnownAgents returns how many APs have ever said hello (their last-known-
// good views survive disconnects).
func (s *Server) KnownAgents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hellos)
}

// LastReallocation returns when the last successful Reallocate finished.
func (s *Server) LastReallocation() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRealloc, !s.lastRealloc.IsZero()
}

type agentConn struct {
	conn net.Conn
	ob   *outbox
}

// storedReport is a report plus the bookkeeping Reallocate needs to age it.
type storedReport struct {
	rep  Report
	recv time.Time
}

// NewServer returns an idle controller.
func NewServer(seed int64) *Server {
	return &Server{
		Seed:    seed,
		agents:  map[string]*agentConn{},
		reports: map[string]storedReport{},
		hellos:  map[string]Hello{},
		assign:  map[string]spectrum.Channel{},
	}
}

// timeout resolves a configurable duration against its default: zero picks
// the default, negative disables (returns 0).
func timeout(configured, def time.Duration) time.Duration {
	if configured == 0 {
		return def
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// log returns the configured logger, or a silent one.
func (s *Server) log() *obs.Logger {
	if s.Log != nil {
		return s.Log
	}
	return obs.Nop
}

// stormLogger is the rate-limited logger for per-message hot paths (stale
// report storms, failing streaming passes): at most a couple of lines per
// second, with the suppressed count reported on the next line through. One
// shared bucket per server — a storm is a storm regardless of which agent
// session observes it.
func (s *Server) stormLogger() *obs.Logger {
	s.stormOnce.Do(func() {
		s.stormLog = s.log().Limited(2, 5)
	})
	return s.stormLog
}

// Serve accepts connections on l until the listener is closed. It returns
// the listener's terminal error (net.ErrClosed after Close). Connections
// are spread over the configured accept/IO shards: shard 0's accept loop
// runs on the calling goroutine, the rest run concurrently against the
// same listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.startStream()
	shards := s.startShards()
	for _, sh := range shards[1:] {
		sh := sh
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptLoop(l, sh)
		}()
	}
	return s.acceptLoop(l, shards[0])
}

// acceptLoop accepts connections for one shard until the listener fails.
func (s *Server) acceptLoop(l net.Listener, sh *shard) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn, sh)
		}()
	}
}

// Close shuts the listener and every agent connection, then waits for the
// handler goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	conns := make([]*agentConn, 0, len(s.agents))
	for _, a := range s.agents {
		conns = append(conns, a)
	}
	s.mu.Unlock()
	s.stopStream()
	s.stopShards()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, a := range conns {
		a.conn.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one agent session: hello, then a stream of reports and pings.
// Every accepted connection gets a read deadline before the first byte is
// read, so a mute client cannot pin this goroutine. Reports are handed to
// the session's shard queue (applied asynchronously by the shard pump);
// all outbound traffic goes through the per-connection outbox.
func (s *Server) handle(conn net.Conn, sh *shard) {
	defer conn.Close()
	if d := timeout(s.HelloTimeout, DefaultHelloTimeout); d > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(d))
	}
	m := s.m()
	r := bufio.NewReaderSize(&countingReader{r: conn, c: m.rxBytes}, 64<<10)
	// The hello always arrives as a v1 JSON line — an agent cannot know
	// the server speaks v2 before the ack.
	env, err := readMsg(r)
	if err != nil {
		m.helloRejects.Inc()
		if errors.Is(err, errMalformed) {
			s.reject(conn, err.Error())
		} else {
			s.reject(conn, "expected hello")
		}
		return
	}
	if env.Type != TypeHello {
		m.helloRejects.Inc()
		s.reject(conn, "expected hello")
		return
	}
	hello := *env.Hello
	if hello.APID == "" {
		m.helloRejects.Inc()
		s.reject(conn, "empty AP id")
		return
	}
	ob := newOutbox(conn, timeout(s.WriteTimeout, DefaultWriteTimeout), m.outm)
	wantV2 := hello.Frame >= FrameV2
	if wantV2 {
		// The agent can read v2 frames from its first byte; everything we
		// send it — starting with the ack itself — goes out framed.
		ob.v2 = true
	}
	ac := &agentConn{conn: conn, ob: ob}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.agents[hello.APID]; dup {
		s.mu.Unlock()
		m.helloRejects.Inc()
		s.reject(conn, "duplicate AP id")
		return
	}
	s.agents[hello.APID] = ac
	s.hellos[hello.APID] = hello
	s.mu.Unlock()
	m.agentsConnected.Inc()
	m.agentConnected.With(hello.APID).Set(1)
	s.log().Info("agent connected", "ap", hello.APID, "addr", conn.RemoteAddr())
	if wantV2 {
		ob.enqueueAck(FrameV2)
	}

	// Only the live connection is forgotten on exit: the hello and last
	// report stay behind as the AP's last-known-good view.
	defer func() {
		s.mu.Lock()
		delete(s.agents, hello.APID)
		s.mu.Unlock()
		m.agentsConnected.Dec()
		m.agentConnected.With(hello.APID).Set(0)
		s.log().Info("agent disconnected", "ap", hello.APID)
	}()

	// If an assignment already exists (reconnect), replay it.
	s.mu.Lock()
	if ch, ok := s.assign[hello.APID]; ok {
		s.mu.Unlock()
		s.push(ac, hello.APID, ch)
	} else {
		s.mu.Unlock()
	}

	var dec *frameDecoder
	if wantV2 {
		dec = &frameDecoder{}
	}
	peerTimeout := timeout(s.PeerTimeout, DefaultPeerTimeout)
	for {
		if peerTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(peerTimeout))
		}
		env, err := readMsgAny(r, dec)
		if err != nil {
			if errors.Is(err, errMalformed) {
				ob.sendError(err.Error())
			}
			if !errors.Is(err, net.ErrClosed) {
				s.log().Warn("agent session error", "ap", hello.APID, "err", err)
			}
			return
		}
		switch env.Type {
		case TypePing:
			m.heartbeats.Inc()
			ob.enqueuePong(env.Ping.Seq)
		case TypeReport:
			if env.Report.APID != hello.APID {
				ob.sendError("report for foreign AP id")
				return
			}
			sh.offer(hello.APID, *env.Report, time.Now())
		default:
			ob.sendError("unexpected message")
			return
		}
	}
}

func (s *Server) reject(conn net.Conn, reason string) {
	if d := timeout(s.WriteTimeout, DefaultWriteTimeout); d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
	}
	_ = writeMsg(conn, &Envelope{Type: TypeError, Error: &Error{Reason: reason}})
}

// push enqueues an assignment to one agent's outbox. Delivery is
// asynchronous: the outbox batches it with any pending traffic, replaces
// it latest-wins if a newer assignment lands first, and drops it entirely
// when the connection already holds an identical assignment (state dedup).
// A write failure closes the connection, which the session's read loop
// notices — the same recovery path a synchronous failure took.
func (s *Server) push(ac *agentConn, apID string, ch spectrum.Channel) {
	m := s.m()
	a := Assign{
		APID:      apID,
		WidthMHz:  int(ch.Width),
		Primary:   int(ch.Primary),
		Secondary: int(ch.Secondary),
	}
	switch ac.ob.enqueueAssign(a, time.Now()) {
	case pushEnqueued:
		m.pushes.Inc()
	case pushDead:
		m.pushErrors.Inc()
		s.log().Warn("assignment push failed", "ap", apID, "err", ac.ob.Err())
	case pushDeduped:
		// Counted by the outbox; nothing to do.
	}
}

// ReportedAgents returns how many APs currently hold a stored report.
func (s *Server) ReportedAgents() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

// Assignments returns a copy of the current assignment table.
func (s *Server) Assignments() map[string]spectrum.Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]spectrum.Channel, len(s.assign))
	for k, v := range s.assign {
		out[k] = v
	}
	return out
}

// PushLatencyQuantile returns the p-quantile of recent assignment push
// latency (enqueue to write completion) over the server's sliding window,
// 0 before any push.
func (s *Server) PushLatencyQuantile(p float64) time.Duration {
	w := s.m().pushWin
	if w.Count() == 0 {
		return 0
	}
	return time.Duration(w.Quantile(p) * float64(time.Second))
}

// Reallocate rebuilds the network view from the latest reports, runs
// Algorithm 2, stores and pushes the assignments, and returns them keyed by
// AP ID. APs that have said hello but not yet reported are treated as
// clientless.
//
// When ReportTTL is set, reports older than the TTL are quarantined: each
// one is logged and the AP's last-known-good view is still used, degrading
// gracefully through short silences. Only when every report is stale does
// Reallocate refuse to act, since the whole view would then be fiction.
//
// In stream mode this is the authoritative full pass: proposed switches
// still face the anti-flap gate's margin and rate limits (never more than
// burst + rate·W switches per AP in any window W), but not the K-streak
// hysteresis.
func (s *Server) Reallocate() (map[string]spectrum.Channel, error) {
	var span obs.SpanRef
	if s.Tracer != nil {
		span = s.Tracer.Begin("full", "", s.Tracer.Now())
		span.Mark(PassStageQueue) // a direct call has no queue wait
	}
	out, err := s.reallocate(nil, true, span)
	if err == nil {
		span.MarkEnd(PassStageFinal)
	}
	return out, err
}

// reallocate is the shared engine behind the periodic full pass (only nil)
// and the streaming neighbourhood pass (only = dirty APs plus their
// hear-graph neighbours; every other AP holds its channel). In stream mode
// each proposed switch is replayed through the switch gate; vetoed switches
// keep the AP's previous assignment.
//
// pspan is the caller's pass span (a dead ref when tracing is off): the
// stage boundaries crossed here — view build, association sweep, channel
// search, gating, pushes — are marked into it, and the search's rank-
// evaluation time is attributed. The caller Ends the span; an errored pass
// leaves it unfinished, which the tracer never exports.
func (s *Server) reallocate(only map[string]bool, bypassStreak bool, pspan obs.SpanRef) (map[string]spectrum.Channel, error) {
	m := s.m()
	span := m.reg.Histogram("acorn_ctlnet_reallocate_seconds",
		"wall time of one networked reallocation (view build + search + push)", nil).Start()
	s.mu.Lock()
	hellos := make(map[string]Hello, len(s.hellos))
	for k, v := range s.hellos {
		hellos[k] = v
	}
	reports := make(map[string]Report, len(s.reports))
	now := time.Now()
	fresh := 0
	var quarantined []string
	for k, v := range s.reports {
		reports[k] = v.rep
		if s.ReportTTL > 0 && now.Sub(v.recv) > s.ReportTTL {
			quarantined = append(quarantined, fmt.Sprintf("%s (age %v)", k, now.Sub(v.recv).Round(time.Millisecond)))
		} else {
			fresh++
		}
	}
	s.mu.Unlock()
	if len(hellos) == 0 {
		m.reallocSkipped.Inc()
		return nil, fmt.Errorf("ctlnet: no agents known")
	}
	if len(quarantined) > 0 {
		sort.Strings(quarantined)
		m.quarantined.Add(uint64(len(quarantined)))
		s.log().Warn("quarantined stale reports, using last-known-good",
			"count", len(quarantined), "ttl", s.ReportTTL, "aps", quarantined)
	}
	if len(reports) > 0 && fresh == 0 {
		m.reallocSkipped.Inc()
		return nil, fmt.Errorf("ctlnet: refusing to reallocate: all %d reports stale (TTL %v)",
			len(reports), s.ReportTTL)
	}

	n, cfg := buildView(hellos, reports)
	// Seed the search from a random coloring, or from the previous
	// assignment when one exists (incremental reallocation).
	rng := stats.NewRand(s.Seed)
	core.RandomInitial(n, cfg, rng.Intn)
	prevAssign := make(map[string]spectrum.Channel)
	s.mu.Lock()
	for apID, ch := range s.assign {
		if n.AP(apID) != nil && n.Band.Contains(ch) {
			cfg.Channels[apID] = ch
			prevAssign[apID] = ch
		}
	}
	s.mu.Unlock()
	pspan.Mark(PassStageView)
	// Re-run Algorithm 1 over the view before allocating, so the channel
	// search prices the associations the view's geometry actually supports.
	// Today's views anchor every client next to its reporting AP, so this
	// is a consistency pass (zero moves); richer views — shared clients,
	// triangulated positions — make it load-bearing. Sorted client order
	// keeps the sweep deterministic.
	viewClients := append([]*wlan.Client(nil), n.Clients...)
	sort.Slice(viewClients, func(i, j int) bool { return viewClients[i].ID < viewClients[j].ID })
	reported := make(map[string]string, len(cfg.Assoc))
	for id, apID := range cfg.Assoc {
		reported[id] = apID
	}
	moves := 0
	for _, d := range core.RoamSweep(n, cfg, viewClients, 0.05, s.Assoc) {
		if d.APID != "" && d.APID != reported[d.ClientID] {
			moves++
		}
	}
	m.reg.Counter("acorn_ctlnet_view_roam_moves_total",
		"clients the pre-allocation roaming sweep moved away from their reported AP").Add(uint64(moves))
	pspan.Mark(PassStageAssoc)
	est := core.NewEstimator(n)
	opts := s.Alloc
	opts.Only = only
	alloc, allocStats := core.AllocateChannels(n, cfg, est, opts)
	pspan.Mark(PassStageAlloc)
	pspan.Attr(PassAttrRankEval, time.Duration(allocStats.RankNanos), uint64(allocStats.Evals.RankEvals))

	out := s.gateAndInstall(prevAssign, only, bypassStreak, alloc.Channels, allocStats.History)
	s.mu.Lock()
	for apID, ch := range out {
		s.assign[apID] = ch
	}
	conns := make(map[string]*agentConn, len(s.agents))
	for id, ac := range s.agents {
		conns[id] = ac
	}
	s.lastRealloc = time.Now()
	s.mu.Unlock()
	pspan.Mark(PassStageGate)
	for apID, ac := range conns {
		ch, ok := out[apID]
		if !ok {
			continue
		}
		// Restricted passes only push assignments that actually changed;
		// full passes push everything (reconnected agents may hold nothing).
		if only != nil {
			if prev, had := prevAssign[apID]; had && prev == ch {
				continue
			}
		}
		s.push(ac, apID, ch)
	}
	pspan.Mark(PassStagePush)
	m.reallocs.Inc()
	if only == nil {
		s.noteFullPass()
	}
	core.RecordAllocMetrics(m.reg, allocStats, alloc)
	span.End()
	return out, nil
}

// gateAndInstall turns a search result into the assignment to store and
// push. Without a switch gate (stream mode off) the search result is taken
// wholesale. With one, previously assigned APs keep their channel unless
// the gate approves the switch — each proposal's relative gain is the
// greedy step's rank against the estimate just before it, mirroring the
// in-process StreamController — while an AP's first-ever assignment passes
// ungated (there is nothing to flap from). Never-assigned APs outside a
// restricted pass's eligible set get no assignment at all: their search
// channel is just the random seed, not a decision.
func (s *Server) gateAndInstall(prevAssign map[string]spectrum.Channel, only map[string]bool,
	bypassStreak bool, proposed map[string]spectrum.Channel, history []core.SwitchRecord) map[string]spectrum.Channel {
	s.stream.mu.Lock()
	gate := s.stream.gate
	s.stream.mu.Unlock()
	if gate == nil && s.Stream.Enabled {
		// Reallocate before Serve: bind the gate so hysteresis state is
		// shared once the consumer starts.
		s.stream.mu.Lock()
		if s.stream.gate == nil {
			s.stream.gate = core.NewSwitchGate(s.Stream.Gate, nil)
		}
		gate = s.stream.gate
		s.stream.mu.Unlock()
	}
	out := make(map[string]spectrum.Channel, len(proposed))
	if gate == nil {
		for apID, ch := range proposed {
			out[apID] = ch
		}
		return out
	}
	for apID, ch := range proposed {
		if prev, had := prevAssign[apID]; had {
			out[apID] = prev
		} else if only == nil || only[apID] {
			out[apID] = ch
		}
	}
	var vetoed, applied uint64
	for _, rec := range history {
		if _, had := prevAssign[rec.AP]; !had {
			continue
		}
		pre := rec.Estimate - rec.Rank
		rel := 0.0
		if pre > 0 {
			rel = rec.Rank / pre
		}
		if gate.Consider(rec.AP, rec.Channel, rel, bypassStreak) {
			if out[rec.AP] != rec.Channel {
				out[rec.AP] = rec.Channel
				applied++
			}
		} else {
			vetoed++
		}
	}
	s.stream.mu.Lock()
	s.stream.vetoed += vetoed
	s.stream.applied += applied
	s.stream.mu.Unlock()
	if vetoed > 0 {
		s.m().streamVetoes.Add(vetoed)
	}
	return out
}

// buildView converts reports into a wlan.Network whose link SNRs reproduce
// the measurements: each AP sits at its own far-apart anchor, each reported
// client is placed near its AP with an obstruction loss calibrated to the
// reported SNR, and the contention relation is the reported hear-graph
// (symmetrized).
func buildView(hellos map[string]Hello, reports map[string]Report) (*wlan.Network, *wlan.Config) {
	ids := make([]string, 0, len(hellos))
	for id := range hellos {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var aps []*wlan.AP
	anchor := map[string]rf.Point{}
	for i, id := range ids {
		p := rf.Point{X: float64(i) * 10000, Y: 0}
		anchor[id] = p
		aps = append(aps, &wlan.AP{ID: id, Pos: p, TxPower: units.DBm(hellos[id].TxPowerDBm)})
	}
	var clients []*wlan.Client
	cfg := wlan.NewConfig()
	for _, id := range ids {
		rep, ok := reports[id]
		if !ok {
			continue
		}
		for _, obs := range rep.Clients {
			c := &wlan.Client{
				ID:  rep.APID + "/" + obs.ClientID,
				Pos: rf.Point{X: anchor[id].X + 5, Y: 3},
			}
			clients = append(clients, c)
			cfg.SetAssoc(c.ID, id)
		}
	}
	n := wlan.NewNetwork(aps, clients)
	n.JitterDB = 0 // the view carries measurements, not physics
	// Calibrate each client's wall so its home-AP SNR matches the report.
	for _, id := range ids {
		rep, ok := reports[id]
		if !ok {
			continue
		}
		ap := n.AP(id)
		for _, obs := range rep.Clients {
			c := n.Client(id + "/" + obs.ClientID)
			base := float64(n.ClientSNR20(ap, c))
			wall := base - obs.SNR20dB
			if wall > 0 {
				c.ExtraLoss = map[string]units.DB{id: units.DB(wall)}
			}
		}
	}
	// Contention from the reported hear-graph, symmetrized.
	hears := map[string]map[string]bool{}
	for _, id := range ids {
		hears[id] = map[string]bool{}
	}
	for _, id := range ids {
		if rep, ok := reports[id]; ok {
			for _, other := range rep.Hears {
				if _, known := hears[other]; known {
					hears[id][other] = true
					hears[other][id] = true
				}
			}
		}
	}
	n.ContendOverride = func(a, b string) bool { return hears[a][b] }
	return n, cfg
}

// ListenAndServe is a convenience for cmd binaries.
func ListenAndServe(addr string, s *Server) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log().Info("acorn controller listening", "addr", l.Addr())
	return s.Serve(l)
}
