package ctlnet

// Framing v2: length-prefixed binary frames carrying batches of messages.
//
// The v1 wire is one JSON object per newline-terminated line — simple, but
// at fleet scale the per-message overhead (field names, base-10 floats, a
// syscall-sized write per message) dominates. A v2 frame is
//
//	0xAC | version (1 byte) | payload length (u32 big-endian) | payload
//
// where the payload is a sequence of kind-tagged message bodies. Integers
// are uvarints, floats are 8-byte IEEE 754 bits, strings are
// length-prefixed. One frame carries a whole batch — an assignment push
// plus pending pongs, or a report plus heartbeats — in one write.
//
// Mixing is safe by construction: 0xAC can never start a JSON line, so a
// reader peeks one byte and dispatches per message (readMsgAny). That lets
// a connection negotiate up mid-stream — the agent requests v2 in its
// hello (a JSON line), the controller acks with TypeFrame and both ends
// flip their writers — while v1 peers never see a frame at all.
//
// Decoding reuses a per-connection payload buffer and scratch message
// bodies, so the steady-state report/push path allocates near zero;
// Report bodies are the exception, freshly allocated because the server
// retains them.

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"
)

// Frame versions negotiable at hello.
const (
	FrameV1 = 1 // newline-delimited JSON, one message per line
	FrameV2 = 2 // length-prefixed binary frames carrying message batches
)

const (
	// frameMagic is the first byte of every v2 frame. It is not valid
	// leading UTF-8 and never begins a JSON value, so a reader can
	// dispatch between framings on one peeked byte.
	frameMagic  = 0xAC
	frameHdrLen = 6 // magic + version + u32 payload length

	// MaxFrameBytes bounds one v2 frame payload, mirroring MaxLineBytes.
	MaxFrameBytes = 1 << 20

	// maxFrameStr and maxFrameItems bound strings and repeated groups
	// inside one message, so a hostile length prefix cannot demand a huge
	// allocation before the payload bound would catch it.
	maxFrameStr   = 1 << 16
	maxFrameItems = 1 << 16
)

// v2 message kind tags.
const (
	kindHello = iota + 1
	kindReport
	kindAssign
	kindError
	kindPing
	kindPong
	kindFrameAck

	// kindReportSame re-submits the connection's previous report under a
	// new sequence number, kolide-style: a fleet's steady state is mostly
	// agents re-confirming an unchanged measurement, and confirming it
	// should cost a handful of bytes, not a re-encoding of every client.
	// Valid only after a full kindReport on the same connection.
	kindReportSame
)

// frameEncoder builds one outbound frame. The buffer is reused across
// frames by the owning outbox, so steady-state encoding allocates nothing.
type frameEncoder struct{ buf []byte }

// begin starts a new frame, reserving the header.
func (e *frameEncoder) begin() {
	if e.buf == nil {
		e.buf = make([]byte, 0, 512)
	}
	e.buf = append(e.buf[:0], frameMagic, FrameV2, 0, 0, 0, 0)
}

// finish patches the payload length and returns the wire bytes, which
// alias the encoder's buffer (valid until the next begin).
func (e *frameEncoder) finish() ([]byte, error) {
	payload := len(e.buf) - frameHdrLen
	if payload <= 0 {
		return nil, protoErrf("empty frame")
	}
	if payload > MaxFrameBytes {
		return nil, protoErrf("frame payload %d exceeds %d bytes", payload, MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(e.buf[2:frameHdrLen], uint32(payload))
	return e.buf, nil
}

func (e *frameEncoder) uint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *frameEncoder) f64(v float64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *frameEncoder) str(s string) {
	e.uint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *frameEncoder) Hello(h *Hello) {
	e.buf = append(e.buf, kindHello)
	e.str(h.APID)
	e.f64(h.TxPowerDBm)
	e.uint(uint64(h.Frame))
}

func (e *frameEncoder) Report(rep *Report) {
	e.buf = append(e.buf, kindReport)
	e.str(rep.APID)
	e.uint(rep.Seq)
	e.uint(uint64(len(rep.Clients)))
	for i := range rep.Clients {
		e.str(rep.Clients[i].ClientID)
		e.f64(rep.Clients[i].SNR20dB)
	}
	e.uint(uint64(len(rep.Hears)))
	for _, h := range rep.Hears {
		e.str(h)
	}
}

// ReportSame re-submits the receiver's last decoded report with a new
// sequence number. The encoder must only emit it after a full Report on
// the same connection (the outbox tracks that).
func (e *frameEncoder) ReportSame(seq uint64) {
	e.buf = append(e.buf, kindReportSame)
	e.uint(seq)
}

func (e *frameEncoder) Assign(a *Assign) {
	e.buf = append(e.buf, kindAssign)
	e.str(a.APID)
	e.uint(uint64(a.WidthMHz))
	e.uint(uint64(a.Primary))
	e.uint(uint64(a.Secondary))
}

func (e *frameEncoder) Error(reason string) {
	e.buf = append(e.buf, kindError)
	e.str(reason)
}

func (e *frameEncoder) Ping(seq uint64) {
	e.buf = append(e.buf, kindPing)
	e.uint(seq)
}

func (e *frameEncoder) Pong(seq uint64) {
	e.buf = append(e.buf, kindPong)
	e.uint(seq)
}

func (e *frameEncoder) FrameAck(v int) {
	e.buf = append(e.buf, kindFrameAck)
	e.uint(uint64(v))
}

// frameDecoder incrementally yields the messages of received v2 frames.
// The payload buffer and the scalar message bodies are reused across
// messages: an Envelope returned by next (and by readMsgAny) is valid only
// until the next call. Report bodies are freshly allocated — callers
// retain them.
type frameDecoder struct {
	payload []byte
	off     int

	env   Envelope
	hb    Heartbeat
	as    Assign
	errb  Error
	hello Hello
	ack   FrameInfo

	// lastRep is the most recent fully-decoded report on this connection,
	// the expansion base for kindReportSame. The expanded Report shares its
	// Clients/Hears slices — reports are immutable once decoded.
	lastRep *Report
}

// readFrame reads one complete frame header and payload from r. Transport
// truncation surfaces as io errors; anything structurally wrong is tagged
// errMalformed.
func (d *frameDecoder) readFrame(r *bufio.Reader) error {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return protoErrf("truncated frame header")
		}
		return err
	}
	if hdr[0] != frameMagic {
		return protoErrf("bad frame magic 0x%02x", hdr[0])
	}
	if hdr[1] != FrameV2 {
		return protoErrf("unsupported frame version %d", hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:frameHdrLen])
	if n == 0 {
		return protoErrf("empty frame")
	}
	if n > MaxFrameBytes {
		return protoErrf("frame payload %d exceeds %d bytes", n, MaxFrameBytes)
	}
	if cap(d.payload) < int(n) {
		d.payload = make([]byte, n)
	} else {
		d.payload = d.payload[:n]
	}
	if _, err := io.ReadFull(r, d.payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	d.off = 0
	return nil
}

func (d *frameDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.payload[d.off:])
	if n <= 0 {
		return 0, protoErrf("truncated varint in frame")
	}
	d.off += n
	return v, nil
}

// count reads a repeated-group length, bounded by maxFrameItems.
func (d *frameDecoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxFrameItems {
		return 0, protoErrf("frame group of %d items exceeds %d", v, maxFrameItems)
	}
	return int(v), nil
}

func (d *frameDecoder) f64() (float64, error) {
	if d.off+8 > len(d.payload) {
		return 0, protoErrf("truncated float in frame")
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.payload[d.off:]))
	d.off += 8
	return v, nil
}

func (d *frameDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxFrameStr {
		return "", protoErrf("frame string of %d bytes exceeds %d", n, maxFrameStr)
	}
	if d.off+int(n) > len(d.payload) {
		return "", protoErrf("truncated string in frame")
	}
	s := string(d.payload[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// next decodes the next message of the current frame, or returns (nil, nil)
// when the frame is exhausted.
func (d *frameDecoder) next() (*Envelope, error) {
	if d.off >= len(d.payload) {
		return nil, nil
	}
	kind := d.payload[d.off]
	d.off++
	env := &d.env
	*env = Envelope{}
	var err error
	switch kind {
	case kindHello:
		var h Hello
		if h.APID, err = d.str(); err != nil {
			return nil, err
		}
		if h.TxPowerDBm, err = d.f64(); err != nil {
			return nil, err
		}
		var fv uint64
		if fv, err = d.uvarint(); err != nil {
			return nil, err
		}
		h.Frame = int(fv)
		d.hello = h
		env.Type, env.Hello = TypeHello, &d.hello
	case kindReport:
		rep := &Report{}
		if rep.APID, err = d.str(); err != nil {
			return nil, err
		}
		if rep.Seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		nc, err := d.count()
		if err != nil {
			return nil, err
		}
		if nc > 0 {
			rep.Clients = make([]ClientObs, nc)
		}
		for i := range rep.Clients {
			if rep.Clients[i].ClientID, err = d.str(); err != nil {
				return nil, err
			}
			if rep.Clients[i].SNR20dB, err = d.f64(); err != nil {
				return nil, err
			}
		}
		nh, err := d.count()
		if err != nil {
			return nil, err
		}
		if nh > 0 {
			rep.Hears = make([]string, nh)
		}
		for i := range rep.Hears {
			if rep.Hears[i], err = d.str(); err != nil {
				return nil, err
			}
		}
		d.lastRep = rep
		env.Type, env.Report = TypeReport, rep
	case kindReportSame:
		var seq uint64
		if seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		if d.lastRep == nil {
			return nil, protoErrf("report-same without a prior report")
		}
		rep := &Report{
			APID:    d.lastRep.APID,
			Seq:     seq,
			Clients: d.lastRep.Clients,
			Hears:   d.lastRep.Hears,
		}
		d.lastRep = rep
		env.Type, env.Report = TypeReport, rep
	case kindAssign:
		var a Assign
		if a.APID, err = d.str(); err != nil {
			return nil, err
		}
		var w, p, sec uint64
		if w, err = d.uvarint(); err != nil {
			return nil, err
		}
		if p, err = d.uvarint(); err != nil {
			return nil, err
		}
		if sec, err = d.uvarint(); err != nil {
			return nil, err
		}
		a.WidthMHz, a.Primary, a.Secondary = int(w), int(p), int(sec)
		d.as = a
		env.Type, env.Assign = TypeAssign, &d.as
	case kindError:
		var reason string
		if reason, err = d.str(); err != nil {
			return nil, err
		}
		d.errb = Error{Reason: reason}
		env.Type, env.Error = TypeError, &d.errb
	case kindPing:
		var seq uint64
		if seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		d.hb = Heartbeat{Seq: seq}
		env.Type, env.Ping = TypePing, &d.hb
	case kindPong:
		var seq uint64
		if seq, err = d.uvarint(); err != nil {
			return nil, err
		}
		d.hb = Heartbeat{Seq: seq}
		env.Type, env.Pong = TypePong, &d.hb
	case kindFrameAck:
		var v uint64
		if v, err = d.uvarint(); err != nil {
			return nil, err
		}
		d.ack = FrameInfo{V: int(v)}
		env.Type, env.Frame = TypeFrame, &d.ack
	default:
		return nil, protoErrf("unknown frame kind %d", kind)
	}
	return env, nil
}

// readMsgAny reads the next message in either framing: any byte but the v2
// magic begins a v1 JSON line, the magic begins a v2 frame whose batched
// messages are then yielded one at a time. dec may be nil for endpoints
// that never negotiated v2, making a frame byte a protocol violation.
//
// The returned Envelope may alias dec's scratch bodies; it is valid only
// until the next call (Report bodies are always fresh).
func readMsgAny(r *bufio.Reader, dec *frameDecoder) (*Envelope, error) {
	for {
		if dec != nil {
			env, err := dec.next()
			if err != nil {
				return nil, err
			}
			if env != nil {
				return env, nil
			}
		}
		b, err := r.Peek(1)
		if err != nil {
			return nil, err
		}
		if b[0] != frameMagic {
			return readMsg(r)
		}
		if dec == nil {
			return nil, protoErrf("binary frame before negotiation")
		}
		if err := dec.readFrame(r); err != nil {
			return nil, err
		}
	}
}
