package ctlnet

import (
	"bufio"
	"bytes"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count returns to the bracket
// taken before the test, with small slack for runtime housekeeping.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readReply reads one protocol line from a raw connection with a deadline.
func readReply(t *testing.T, conn net.Conn) string {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		t.Fatalf("no reply: %v", err)
	}
	return line
}

// TestHostileInputs drives the server with protocol-hostile peers —
// oversized lines, malformed JSON, wrong-type envelopes, duplicate hellos
// — and asserts a clean error reply for each, plus no leaked handler
// goroutines once everything is closed.
func TestHostileInputs(t *testing.T) {
	before := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(1)
	go func() { _ = s.Serve(l) }()
	addr := l.Addr().String()

	dial := func() net.Conn {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	t.Run("oversized line", func(t *testing.T) {
		conn := dial()
		defer conn.Close()
		// One byte past the bound before the newline arrives: the server
		// must reject rather than buffer an unbounded line.
		junk := append(bytes.Repeat([]byte("a"), MaxLineBytes+1), '\n')
		_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write(junk); err != nil {
			t.Fatalf("oversized write: %v", err)
		}
		if got := readReply(t, conn); !strings.Contains(got, "exceeds") {
			t.Errorf("reply %q does not name the size violation", got)
		}
	})

	t.Run("malformed json", func(t *testing.T) {
		conn := dial()
		defer conn.Close()
		if _, err := conn.Write([]byte("{not json at all\n")); err != nil {
			t.Fatal(err)
		}
		if got := readReply(t, conn); !strings.Contains(got, "error") {
			t.Errorf("unexpected reply: %q", got)
		}
	})

	t.Run("wrong-type envelope", func(t *testing.T) {
		conn := dial()
		defer conn.Close()
		err := writeMsg(conn, &Envelope{Type: TypeAssign, Assign: &Assign{
			APID: "AP1", WidthMHz: 20, Primary: 36,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if got := readReply(t, conn); !strings.Contains(got, "expected hello") {
			t.Errorf("unexpected reply: %q", got)
		}
	})

	t.Run("bodyless message after hello", func(t *testing.T) {
		conn := dial()
		defer conn.Close()
		if err := writeMsg(conn, &Envelope{Type: TypeHello, Hello: &Hello{APID: "AP7"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(`{"type":"report"}` + "\n")); err != nil {
			t.Fatal(err)
		}
		if got := readReply(t, conn); !strings.Contains(got, "report without body") {
			t.Errorf("unexpected reply: %q", got)
		}
	})

	t.Run("duplicate hello", func(t *testing.T) {
		first := dial()
		defer first.Close()
		if err := writeMsg(first, &Envelope{Type: TypeHello, Hello: &Hello{APID: "AP9"}}); err != nil {
			t.Fatal(err)
		}
		// Wait until the first session is registered before racing it.
		deadline := time.Now().Add(5 * time.Second)
		for {
			s.mu.Lock()
			_, ok := s.agents["AP9"]
			s.mu.Unlock()
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("first hello never registered")
			}
			time.Sleep(5 * time.Millisecond)
		}
		second := dial()
		defer second.Close()
		if err := writeMsg(second, &Envelope{Type: TypeHello, Hello: &Hello{APID: "AP9"}}); err != nil {
			t.Fatal(err)
		}
		if got := readReply(t, second); !strings.Contains(got, "duplicate") {
			t.Errorf("unexpected reply: %q", got)
		}
	})

	_ = s.Close()
	waitGoroutines(t, before)
}

// TestMuteClientReaped connects and sends nothing: the hello deadline must
// free the handler goroutine instead of letting the mute client pin it
// forever.
func TestMuteClientReaped(t *testing.T) {
	before := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(1)
	s.HelloTimeout = 100 * time.Millisecond
	go func() { _ = s.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must give up on us well before this read
	// deadline, closing the connection from its side.
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("mute client held its connection for %v", waited)
	}
	_ = s.Close()
	waitGoroutines(t, before)
}
