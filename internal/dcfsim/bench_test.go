package dcfsim

import "testing"

func BenchmarkSimThreeCells(b *testing.B) {
	mk := func(id string) *Station {
		return &Station{ID: id, Flows: []Flow{mkFlow("c1", 135, 0.05), mkFlow("c2", 26, 0.2)}}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := New([]*Station{mk("A"), mk("B"), mk("C")}, func(x, y int) bool { return x != y }, int64(i))
		sim.Run(5)
	}
}
