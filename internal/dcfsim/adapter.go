package dcfsim

import (
	"acorn/internal/mac"
	"acorn/internal/ratecontrol"
	"acorn/internal/wlan"
)

// FromConfig builds a simulator for a configured WLAN: one station per AP
// holding clients, one flow per association, rate control run per link
// exactly as the analytic evaluator does, and the conflict relation taken
// from channel conflicts plus carrier-sense contention.
func FromConfig(n *wlan.Network, cfg *wlan.Config, seed int64) *Sim {
	var stations []*Station
	var aps []*wlan.AP
	for _, ap := range n.APs {
		clientIDs := cfg.ClientsOf(ap.ID)
		if len(clientIDs) == 0 {
			continue
		}
		ch := cfg.Channels[ap.ID]
		st := &Station{ID: ap.ID}
		for _, id := range clientIDs {
			cl := n.Client(id)
			sel := ratecontrol.Best(n.ClientSNR(ap, cl, ch), ch.Width, n.PacketBytes)
			st.Flows = append(st.Flows, flowFromSelection(id, sel, n.PacketBytes))
		}
		stations = append(stations, st)
		aps = append(aps, ap)
	}
	conflicts := func(i, j int) bool {
		if i == j {
			return false
		}
		chI := cfg.Channels[aps[i].ID]
		chJ := cfg.Channels[aps[j].ID]
		return chI.Conflicts(chJ) && n.Contend(aps[i], aps[j], cfg)
	}
	return New(stations, conflicts, seed)
}

// flowFromSelection converts a rate-control outcome into burst parameters
// consistent with mac.FrameAirtime's aggregation model: the fixed overhead
// is paid once per burst of AggregationFactor subframes, and the backoff
// component is excluded here because the simulator plays backoff out in
// slots.
func flowFromSelection(clientID string, sel ratecontrol.Selection, packetBytes int) Flow {
	bits := float64((packetBytes + mac.MACHeaderBytes) * 8)
	overheadNoBackoff := mac.FrameOverhead() - float64(mac.CWMin)/2*mac.SlotTime
	rate := sel.RateMbps * 1e6
	burst := overheadNoBackoff + float64(mac.AggregationFactor)*bits/rate
	return Flow{
		ClientID:     clientID,
		BurstAirtime: burst,
		SubFrames:    mac.AggregationFactor,
		SubFrameBits: float64(packetBytes * 8),
		PER:          sel.PER,
	}
}
