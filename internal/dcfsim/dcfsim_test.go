package dcfsim

import (
	"math"
	"testing"

	"acorn/internal/mac"
	"acorn/internal/rf"
	"acorn/internal/spectrum"
	"acorn/internal/units"
	"acorn/internal/wlan"
)

// mkFlow builds a clean flow delivering packetBits per subframe at the
// given rate (Mbit/s), matching the adapter's airtime accounting.
func mkFlow(client string, rateMbps, per float64) Flow {
	bits := float64((1500 + mac.MACHeaderBytes) * 8)
	overhead := mac.FrameOverhead() - float64(mac.CWMin)/2*mac.SlotTime
	return Flow{
		ClientID:     client,
		BurstAirtime: overhead + float64(mac.AggregationFactor)*bits/(rateMbps*1e6),
		SubFrames:    mac.AggregationFactor,
		SubFrameBits: 1500 * 8,
		PER:          per,
	}
}

func TestValidate(t *testing.T) {
	good := New([]*Station{{ID: "A", Flows: []Flow{mkFlow("c", 65, 0)}}}, nil, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sim rejected: %v", err)
	}
	cases := []*Station{
		{ID: "", Flows: []Flow{mkFlow("c", 65, 0)}},
		{ID: "A", Flows: []Flow{{ClientID: "c", BurstAirtime: 0, SubFrames: 1, SubFrameBits: 1}}},
		{ID: "A", Flows: []Flow{{ClientID: "c", BurstAirtime: 1, SubFrames: 0, SubFrameBits: 1}}},
		{ID: "A", Flows: []Flow{{ClientID: "c", BurstAirtime: 1, SubFrames: 1, SubFrameBits: 1, PER: 2}}},
	}
	for i, st := range cases {
		if err := New([]*Station{st}, nil, 1).Validate(); err == nil {
			t.Errorf("case %d: invalid sim accepted", i)
		}
	}
	dup := New([]*Station{{ID: "A", Flows: []Flow{mkFlow("c", 65, 0)}}, {ID: "A", Flows: []Flow{mkFlow("c", 65, 0)}}}, nil, 1)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate station accepted")
	}
}

func TestSingleFlowMatchesAnalytic(t *testing.T) {
	// One station, one clean client at 65 Mbit/s: the empirical goodput
	// must match 1/ClientDelay within a few percent.
	sim := New([]*Station{{ID: "A", Flows: []Flow{mkFlow("c", 65, 0)}}}, nil, 1)
	res := sim.Run(20)
	got := res.ThroughputMbps("A", "c")
	want := 1 / mac.ClientDelay(1500, 65, 0)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical %v vs analytic %v (%.1f%% off)", got, want, 100*math.Abs(got-want)/want)
	}
}

func TestLossScalesThroughput(t *testing.T) {
	run := func(per float64) float64 {
		sim := New([]*Station{{ID: "A", Flows: []Flow{mkFlow("c", 65, per)}}}, nil, 2)
		return sim.Run(20).ThroughputMbps("A", "c")
	}
	clean := run(0)
	lossy := run(0.3)
	// BlockAck burst model: delivered fraction ≈ (1 − PER).
	ratio := lossy / clean
	if math.Abs(ratio-0.7) > 0.05 {
		t.Errorf("PER 0.3 delivered ratio = %v, want ≈0.7", ratio)
	}
	if dead := run(1); dead != 0 {
		t.Errorf("PER 1 should deliver nothing, got %v", dead)
	}
}

func TestPerformanceAnomalyEmpirical(t *testing.T) {
	// One fast (135 Mbit/s) and one slow (6.5 Mbit/s) client: DCF's
	// round-robin equalizes their throughputs — the anomaly, measured
	// rather than assumed.
	st := &Station{ID: "A", Flows: []Flow{mkFlow("fast", 135, 0), mkFlow("slow", 6.5, 0)}}
	res := New([]*Station{st}, nil, 3).Run(30)
	fast := res.ThroughputMbps("A", "fast")
	slow := res.ThroughputMbps("A", "slow")
	if math.Abs(fast-slow)/slow > 0.05 {
		t.Errorf("anomaly violated: fast %v vs slow %v", fast, slow)
	}
	// And the analytic cell model agrees on the aggregate.
	cell := mac.Cell{
		Delays:      []float64{mac.ClientDelay(1500, 135, 0), mac.ClientDelay(1500, 6.5, 0)},
		AccessShare: 1,
	}
	want := cell.AggregateThroughput()
	got := res.StationThroughputMbps("A")
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("aggregate: empirical %v vs analytic %v", got, want)
	}
}

func TestCoChannelSharing(t *testing.T) {
	// Two identical co-channel stations split the medium ≈ evenly, each
	// getting about half its solo throughput.
	mk := func(id string) *Station { return &Station{ID: id, Flows: []Flow{mkFlow("c", 65, 0)}} }
	solo := New([]*Station{mk("A")}, nil, 4).Run(20).StationThroughputMbps("A")
	shared := New([]*Station{mk("A"), mk("B")}, func(i, j int) bool { return i != j }, 4).Run(20)
	a := shared.StationThroughputMbps("A")
	b := shared.StationThroughputMbps("B")
	if math.Abs(a-b)/solo > 0.1 {
		t.Errorf("unfair split: %v vs %v", a, b)
	}
	// Collisions steal a little beyond the ideal half.
	if total := a + b; total < 0.8*solo || total > 1.02*solo {
		t.Errorf("shared total %v vs solo %v out of range", total, solo)
	}
}

func TestOrthogonalChannelsConcurrent(t *testing.T) {
	mk := func(id string) *Station { return &Station{ID: id, Flows: []Flow{mkFlow("c", 65, 0)}} }
	res := New([]*Station{mk("A"), mk("B")}, func(i, j int) bool { return false }, 5).Run(20)
	solo := New([]*Station{mk("A")}, nil, 5).Run(20).StationThroughputMbps("A")
	for _, id := range []string{"A", "B"} {
		if got := res.StationThroughputMbps(id); math.Abs(got-solo)/solo > 0.05 {
			t.Errorf("%s on orthogonal channel got %v, want ≈solo %v", id, got, solo)
		}
	}
}

func TestThreeWayContention(t *testing.T) {
	// Three co-channel stations: each ≈ a third.
	mk := func(id string) *Station { return &Station{ID: id, Flows: []Flow{mkFlow("c", 65, 0)}} }
	res := New([]*Station{mk("A"), mk("B"), mk("C")}, func(i, j int) bool { return i != j }, 6).Run(30)
	solo := New([]*Station{mk("A")}, nil, 6).Run(30).StationThroughputMbps("A")
	for _, id := range []string{"A", "B", "C"} {
		share := res.StationThroughputMbps(id) / solo
		if share < 0.25 || share > 0.4 {
			t.Errorf("%s share = %v, want ≈1/3", id, share)
		}
	}
	if res.Collisions == 0 {
		t.Error("three-way contention should produce collisions")
	}
}

func TestEmptySimNoPanic(t *testing.T) {
	res := New(nil, nil, 1).Run(5)
	if len(res.DeliveredBits) != 0 {
		t.Error("empty sim delivered bits")
	}
	idle := New([]*Station{{ID: "A"}}, nil, 1).Run(5)
	if idle.Bursts != 0 {
		t.Error("flowless station transmitted")
	}
}

func TestFromConfigAgreesWithEvaluator(t *testing.T) {
	// End-to-end: the discrete-event simulation of a configured WLAN
	// must agree with the analytic evaluator's UDP totals within ~10%.
	ap1 := &wlan.AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &wlan.AP{ID: "AP2", Pos: rf.Point{X: 30, Y: 0}, TxPower: 18}
	clients := []*wlan.Client{
		{ID: "a", Pos: rf.Point{X: 3, Y: 2}},
		{ID: "b", Pos: rf.Point{X: 5, Y: -4}, ExtraLoss: map[string]units.DB{"AP1": 35, "AP2": 35}},
		{ID: "c", Pos: rf.Point{X: 32, Y: 2}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap1, ap2}, clients)
	cfg := wlan.NewConfig()
	cfg.Channels["AP1"] = spectrum.NewChannel40(36, 40)
	cfg.Channels["AP2"] = spectrum.NewChannel40(36, 40) // deliberate conflict
	cfg.Assoc["a"] = "AP1"
	cfg.Assoc["b"] = "AP1"
	cfg.Assoc["c"] = "AP2"

	sim := FromConfig(n, cfg, 9)
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	res := sim.Run(30)
	analytic := n.Evaluate(cfg)
	for _, apID := range []string{"AP1", "AP2"} {
		got := res.StationThroughputMbps(apID)
		want := analytic.Cell(apID).ThroughputUDP
		if want == 0 {
			continue
		}
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s: empirical %v vs analytic %v (>15%% apart)", apID, got, want)
		}
	}
}

func TestFromConfigOrthogonalIsolated(t *testing.T) {
	ap1 := &wlan.AP{ID: "AP1", Pos: rf.Point{X: 0, Y: 0}, TxPower: 18}
	ap2 := &wlan.AP{ID: "AP2", Pos: rf.Point{X: 30, Y: 0}, TxPower: 18}
	clients := []*wlan.Client{
		{ID: "a", Pos: rf.Point{X: 3, Y: 2}},
		{ID: "c", Pos: rf.Point{X: 32, Y: 2}},
	}
	n := wlan.NewNetwork([]*wlan.AP{ap1, ap2}, clients)
	cfg := wlan.NewConfig()
	cfg.Channels["AP1"] = spectrum.NewChannel40(36, 40)
	cfg.Channels["AP2"] = spectrum.NewChannel40(44, 48)
	cfg.Assoc["a"] = "AP1"
	cfg.Assoc["c"] = "AP2"
	res := FromConfig(n, cfg, 11).Run(20)
	analytic := n.Evaluate(cfg)
	for _, apID := range []string{"AP1", "AP2"} {
		got := res.StationThroughputMbps(apID)
		want := analytic.Cell(apID).ThroughputUDP
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("%s: empirical %v vs analytic %v", apID, got, want)
		}
	}
}

func TestSimDeterministicPerSeed(t *testing.T) {
	mk := func() []*Station {
		return []*Station{
			{ID: "A", Flows: []Flow{mkFlow("c1", 65, 0.1), mkFlow("c2", 13, 0.05)}},
			{ID: "B", Flows: []Flow{mkFlow("c1", 135, 0.2)}},
		}
	}
	conf := func(i, j int) bool { return i != j }
	a := New(mk(), conf, 42).Run(10)
	b := New(mk(), conf, 42).Run(10)
	if a.Bursts != b.Bursts || a.Collisions != b.Collisions {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	for k, v := range a.DeliveredBits {
		if b.DeliveredBits[k] != v {
			t.Errorf("flow %s diverged", k)
		}
	}
	c := New(mk(), conf, 43).Run(10)
	if c.Bursts == a.Bursts && c.Collisions == a.Collisions {
		// Not strictly impossible, but with different seeds the event
		// sequences should differ.
		same := true
		for k, v := range a.DeliveredBits {
			if c.DeliveredBits[k] != v {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical runs")
		}
	}
}
