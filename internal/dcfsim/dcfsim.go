// Package dcfsim is a discrete-event simulator of 802.11 DCF downlink
// contention. It exists to validate the closed-form airtime model in
// internal/mac (and therefore every throughput number the allocation
// algorithms optimize): instead of computing expected airtimes, it plays
// out slotted CSMA/CA — random backoff, collisions, binary exponential
// backoff, per-subframe loss — and counts what each client actually
// receives.
//
// Transmissions are A-MPDU bursts, matching the aggregation assumption of
// mac.FrameAirtime: a station that wins the medium sends one burst of
// subframes to the current client (round-robin across clients — the
// equal-opportunity behaviour behind the performance anomaly), each
// subframe failing independently with the flow's PER; failed subframes are
// selectively retransmitted as part of later bursts (BlockAck semantics),
// so in the saturated steady state a flow delivers (1 − PER) of its burst
// payload per medium access.
//
// The integration tests assert that the empirical per-client throughputs
// reproduce the performance anomaly (equal shares within a cell), that
// co-channel cells split airtime, and that the analytic mac.Cell model
// agrees with the simulation within a few percent.
package dcfsim

import (
	"fmt"
	"math/rand"
	"sort"

	"acorn/internal/mac"
)

// Flow is one downlink stream: an AP transmitting to one client.
type Flow struct {
	ClientID string
	// BurstAirtime is the medium time of one burst transmission
	// excluding the random backoff (which the simulator plays out in
	// slots): DIFS + preamble + aggregated payload + SIFS + ACK.
	BurstAirtime float64
	// SubFrames is the number of aggregated subframes per burst.
	SubFrames int
	// SubFrameBits is the payload of one subframe.
	SubFrameBits float64
	// PER is the independent per-subframe loss probability.
	PER float64
}

// Station is one AP with saturated downlink traffic, serving its flows
// round-robin.
type Station struct {
	ID    string
	Flows []Flow

	next    int
	backoff int
	cw      int
}

// Result accumulates per-flow outcomes.
type Result struct {
	// DeliveredBits maps "station/client" to payload bits delivered.
	DeliveredBits map[string]float64
	// Bursts and Collisions count medium events.
	Bursts, Collisions int
	// SimulatedSeconds is the simulated time span.
	SimulatedSeconds float64
}

// ThroughputMbps returns the empirical throughput of one flow in Mbit/s.
func (r Result) ThroughputMbps(stationID, clientID string) float64 {
	if r.SimulatedSeconds <= 0 {
		return 0
	}
	return r.DeliveredBits[key(stationID, clientID)] / r.SimulatedSeconds / 1e6
}

// StationThroughputMbps sums a station's flows.
func (r Result) StationThroughputMbps(stationID string) float64 {
	var bits float64
	prefix := stationID + "/"
	for k, b := range r.DeliveredBits {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			bits += b
		}
	}
	if r.SimulatedSeconds <= 0 {
		return 0
	}
	return bits / r.SimulatedSeconds / 1e6
}

func key(station, client string) string { return station + "/" + client }

// Sim is a set of stations plus the conflict relation telling which pairs
// share the medium. Stations in disjoint conflict components run
// concurrently.
type Sim struct {
	Stations []*Station
	// Conflicts reports whether stations i and j contend. It must be
	// symmetric and irreflexive.
	Conflicts func(i, j int) bool

	rng *rand.Rand
}

// New builds a simulator with the given seed.
func New(stations []*Station, conflicts func(i, j int) bool, seed int64) *Sim {
	return &Sim{Stations: stations, Conflicts: conflicts, rng: rand.New(rand.NewSource(seed))}
}

// Validate sanity-checks the simulator inputs.
func (s *Sim) Validate() error {
	seen := map[string]bool{}
	for _, st := range s.Stations {
		if st.ID == "" {
			return fmt.Errorf("dcfsim: station with empty ID")
		}
		if seen[st.ID] {
			return fmt.Errorf("dcfsim: duplicate station %q", st.ID)
		}
		seen[st.ID] = true
		for _, f := range st.Flows {
			if f.BurstAirtime <= 0 {
				return fmt.Errorf("dcfsim: %s/%s: non-positive airtime", st.ID, f.ClientID)
			}
			if f.PER < 0 || f.PER > 1 {
				return fmt.Errorf("dcfsim: %s/%s: PER %v out of range", st.ID, f.ClientID, f.PER)
			}
			if f.SubFrames <= 0 || f.SubFrameBits <= 0 {
				return fmt.Errorf("dcfsim: %s/%s: malformed burst", st.ID, f.ClientID)
			}
		}
	}
	return nil
}

// Run simulates the given span of medium time per conflict component and
// returns the outcome.
func (s *Sim) Run(duration float64) Result {
	res := Result{DeliveredBits: make(map[string]float64)}
	if len(s.Stations) == 0 {
		return res
	}
	for _, st := range s.Stations {
		st.cw = mac.CWMin
		st.backoff = s.rng.Intn(st.cw + 1)
		st.next = 0
	}
	for _, group := range s.conflictComponents() {
		s.runGroup(group, duration, &res)
	}
	res.SimulatedSeconds = duration
	return res
}

// runGroup plays contention rounds within one conflict component until the
// component's medium clock reaches duration.
func (s *Sim) runGroup(group []int, duration float64, res *Result) {
	var active []*Station
	for _, idx := range group {
		if len(s.Stations[idx].Flows) > 0 {
			active = append(active, s.Stations[idx])
		}
	}
	if len(active) == 0 {
		return
	}
	var t float64
	for t < duration {
		// Smallest backoff wins; others freeze their counters.
		minB := active[0].backoff
		for _, st := range active[1:] {
			if st.backoff < minB {
				minB = st.backoff
			}
		}
		var winners []*Station
		for _, st := range active {
			if st.backoff == minB {
				winners = append(winners, st)
			} else {
				st.backoff -= minB
			}
		}
		t += float64(minB) * mac.SlotTime

		if len(winners) > 1 {
			// Collision: the medium is busy for the longest burst;
			// colliders double their windows.
			var longest float64
			for _, st := range winners {
				if bt := st.Flows[st.next].BurstAirtime; bt > longest {
					longest = bt
				}
				st.collisionBackoff(s.rng)
			}
			res.Collisions += len(winners)
			t += longest
			continue
		}

		st := winners[0]
		f := &st.Flows[st.next]
		res.Bursts++
		delivered := 0
		for i := 0; i < f.SubFrames; i++ {
			if s.rng.Float64() >= f.PER {
				delivered++
			}
		}
		res.DeliveredBits[key(st.ID, f.ClientID)] += float64(delivered) * f.SubFrameBits
		t += f.BurstAirtime
		st.burstDone(s.rng)
	}
}

// conflictComponents partitions stations into connected components of the
// conflict graph.
func (s *Sim) conflictComponents() [][]int {
	n := len(s.Stations)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Conflicts != nil && s.Conflicts(i, j) {
				parent[find(i)] = find(j)
			}
		}
	}
	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		byRoot[find(i)] = append(byRoot[find(i)], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, byRoot[r])
	}
	return groups
}

// burstDone moves to the next flow round-robin and resets contention state.
func (st *Station) burstDone(rng *rand.Rand) {
	st.next = (st.next + 1) % len(st.Flows)
	st.cw = mac.CWMin
	st.backoff = rng.Intn(st.cw + 1)
}

// collisionBackoff doubles the contention window (capped) and redraws.
func (st *Station) collisionBackoff(rng *rand.Rand) {
	if st.cw < 1023 {
		st.cw = st.cw*2 + 1
	}
	st.backoff = rng.Intn(st.cw + 1)
}
