package acorn

import "acorn/internal/dcfsim"

// EmpiricalCell is one AP's outcome from a discrete-event DCF simulation.
type EmpiricalCell struct {
	APID string
	// ThroughputMbps is the measured aggregate cell throughput.
	ThroughputMbps float64
	// PerClientMbps is the measured throughput per client.
	PerClientMbps map[string]float64
}

// EmpiricalReport is the outcome of EmpiricalEvaluate.
type EmpiricalReport struct {
	Cells []EmpiricalCell
	// TotalMbps is the network-wide measured throughput.
	TotalMbps float64
	// Collisions counts MAC collisions observed during the run.
	Collisions int
}

// EmpiricalEvaluate plays a configuration through the discrete-event DCF
// simulator for the given number of seconds of medium time: slotted
// CSMA/CA with random backoff, collisions and per-subframe losses, instead
// of the closed-form airtime model that Network.Evaluate uses. Use it to
// sanity-check a configuration the analytic model produced — the two agree
// within a few percent by construction of the MAC model, and the
// simulation additionally reports collision counts.
func EmpiricalEvaluate(n *Network, cfg *Config, seed int64, seconds float64) EmpiricalReport {
	sim := dcfsim.FromConfig(n, cfg, seed)
	res := sim.Run(seconds)
	var out EmpiricalReport
	out.Collisions = res.Collisions
	for _, ap := range n.APs {
		cell := EmpiricalCell{APID: ap.ID, PerClientMbps: map[string]float64{}}
		for _, id := range cfg.ClientsOf(ap.ID) {
			t := res.ThroughputMbps(ap.ID, id)
			cell.PerClientMbps[id] = t
			cell.ThroughputMbps += t
		}
		out.Cells = append(out.Cells, cell)
		out.TotalMbps += cell.ThroughputMbps
	}
	return out
}
