package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"acorn"
	"acorn/internal/ctlnet"
	"acorn/internal/obs"
)

// agentConfig bundles the -controller mode flags.
type agentConfig struct {
	addr         string
	heartbeat    time.Duration
	frame        int
	backoffMin   time.Duration
	backoffMax   time.Duration
	reportPeriod time.Duration
	duration     time.Duration
}

// measure derives each AP's control-plane report from the topology, the
// way a real AP would from its own radio: clients associate to the
// strongest AP they hear, the link SNR is the 20 MHz measurement, and the
// hear-graph comes from the carrier-sense contention relation.
func measure(n *acorn.Network, clients []*acorn.Client) map[string]ctlnet.Report {
	cfg := acorn.NewConfig()
	reports := map[string]ctlnet.Report{}
	for _, ap := range n.APs {
		reports[ap.ID] = ctlnet.Report{APID: ap.ID}
	}
	for _, c := range clients {
		cands := n.APsInRange(c)
		if len(cands) == 0 {
			continue
		}
		home := cands[0]
		cfg.SetAssoc(c.ID, home.ID)
		rep := reports[home.ID]
		rep.Clients = append(rep.Clients, ctlnet.ClientObs{
			ClientID: c.ID,
			SNR20dB:  float64(n.ClientSNR20(home, c)),
		})
		reports[home.ID] = rep
	}
	for _, a := range n.APs {
		rep := reports[a.ID]
		for _, b := range n.APs {
			if a != b && n.Contend(a, b, cfg) {
				rep.Hears = append(rep.Hears, b.ID)
			}
		}
		sort.Strings(rep.Hears)
		reports[a.ID] = rep
	}
	return reports
}

// runAgents streams the topology's measured view to a remote controller,
// one reconnecting agent per AP, and prints assignments as they arrive.
// Each agent registers a liveness health check so /healthz degrades while
// any AP is disconnected from the controller.
func runAgents(n *acorn.Network, clients []*acorn.Client, cfg agentConfig, health *obs.Health) {
	reports := measure(n, clients)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var agents []*ctlnet.ReconnectingAgent
	for _, ap := range n.APs {
		ra, err := ctlnet.NewReconnectingAgent(ctx, cfg.addr,
			ctlnet.Hello{APID: ap.ID, TxPowerDBm: float64(ap.TxPower)},
			ctlnet.ReconnectOptions{
				Backoff: ctlnet.Backoff{Min: cfg.backoffMin, Max: cfg.backoffMax},
				Agent:   ctlnet.AgentOptions{HeartbeatInterval: cfg.heartbeat, Frame: cfg.frame},
				Log:     logger,
			})
		if err != nil {
			logger.Fatalf("acornd: agent %s: %v", ap.ID, err)
		}
		defer ra.Close()
		if err := ra.SendReport(reports[ap.ID]); err != nil {
			logger.Fatalf("acornd: agent %s: %v", ap.ID, err)
		}
		agents = append(agents, ra)
		health.Register("agent:"+ap.ID, agentCheck(ra))

		go func(id string, ra *ctlnet.ReconnectingAgent) {
			tick := time.NewTicker(cfg.reportPeriod)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					_ = ra.SendReport(reports[id])
				case ch := <-ra.Updates():
					logger.Info("assignment received", "ap", id, "channel", ch)
				}
			}
		}(ap.ID, ra)
	}
	logger.Infof("%d agents reporting to %s every %v", len(agents), cfg.addr, cfg.reportPeriod)

	if cfg.duration > 0 {
		time.Sleep(cfg.duration)
		return
	}
	select {} // run until killed
}

// agentCheck reports a reconnecting agent's controller-session liveness.
func agentCheck(ra *ctlnet.ReconnectingAgent) func() obs.CheckResult {
	return func() obs.CheckResult {
		if ra.Connected() {
			return obs.OK(fmt.Sprintf("connected (%d sessions)", ra.Sessions()))
		}
		detail := "disconnected"
		if err := ra.LastErr(); err != nil {
			detail = fmt.Sprintf("disconnected: %v", err)
		}
		return obs.Bad(detail)
	}
}
