// Command acornd runs the ACORN controller on a WLAN described in a JSON
// topology file (or a built-in demo topology) and prints the resulting
// configuration and throughput report, optionally alongside the legacy
// baseline for comparison.
//
// Usage:
//
//	acornd [-topology file.json] [-seed N] [-compare] [-json]
//	       [-stream [-switch-margin 0.02] [-switch-streak 1]
//	        [-switch-rate 12] [-switch-burst 3]]
//
// With -stream the local solve is event-driven: each client is fed through
// the streaming controller as an arrival event (Algorithm 1 admission plus
// a bounded local re-optimization with every proposed channel switch gated
// by goodput hysteresis and a per-AP switch-rate token bucket), and the
// stream's own statistics are reported alongside the configuration.
//
// With -controller the topology is not solved locally: acornd instead
// measures it (client SNRs and the AP hear-graph) and streams those
// measurements to a running `acornctl serve` controller, one reconnecting
// agent per AP, printing the channel assignments it gets back:
//
//	acornd -topology file.json -controller host:7431
//	       [-heartbeat 15s] [-backoff-min 500ms] [-backoff-max 1m]
//	       [-report-period 30s] [-duration 0]
//
// Observability. -obs-addr starts the live introspection server
// (Prometheus-text /metrics, /healthz, /debug/vars, /debug/pprof/);
// -obs-hold keeps the process alive after a local solve so the endpoints
// can be scraped; -log-level sets the leveled logger's threshold; -trace
// streams the solver's JSONL convergence trace to a file ("-" = stdout).
// With -stream, -trace-sample N traces every Nth pipeline event as a span
// (per-stage receive-to-applied timings, served as JSONL at /debug/trace),
// and -slo-p99-ms B watches the windowed p99 decision latency against a
// budget of B milliseconds at /debug/slo, optionally capturing a CPU
// profile to -slo-profile when the budget is breached.
//
// Topology file format:
//
//	{
//	  "aps":     [{"id": "AP1", "x": 0, "y": 0, "txPower": 18}, ...],
//	  "clients": [{"id": "u1", "x": 5, "y": 3,
//	               "extraLoss": {"AP1": 20}}, ...]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"acorn"
	"acorn/internal/core"
	"acorn/internal/obs"
	"acorn/internal/profiling"
	"acorn/internal/topofile"
	"acorn/internal/units"
)

// logger is the process logger; -log-level re-levels it.
var logger = obs.DefaultLogger.Named("acornd")

func main() {
	topoPath := flag.String("topology", "", "JSON topology file (empty = built-in demo)")
	seed := flag.Int64("seed", 1, "seed for the random initial channel assignment")
	compare := flag.Bool("compare", false, "also run the legacy [17] baseline")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	dot := flag.Bool("dot", false, "emit the configured interference graph in Graphviz DOT")
	controller := flag.String("controller", "", "stream measurements to this acornctl controller instead of solving locally")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "agent ping interval (with -controller)")
	frame := flag.Int("frame", 2, "wire framing version to request (with -controller): 2 = batched binary frames, 1 = JSON lines")
	backoffMin := flag.Duration("backoff-min", 500*time.Millisecond, "first reconnect delay (with -controller)")
	backoffMax := flag.Duration("backoff-max", time.Minute, "reconnect delay cap (with -controller)")
	reportPeriod := flag.Duration("report-period", 30*time.Second, "measurement report interval (with -controller)")
	duration := flag.Duration("duration", 0, "how long to run the agents; 0 = forever (with -controller)")
	logLevel := flag.String("log-level", "info", "log threshold: debug|info|warn|error|off")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /debug/vars and pprof on this address")
	obsHold := flag.Duration("obs-hold", 0, "keep the process (and -obs-addr endpoints) alive this long after a local solve")
	tracePath := flag.String("trace", "", "write the solver's JSONL convergence trace to this file (\"-\" = stdout)")
	allocWorkers := flag.Int("alloc-workers", 0, "parallel rank-evaluation workers for Algorithm 2 (0 = GOMAXPROCS)")
	assocWorkers := flag.Int("assoc-workers", 0, "parallel roaming-sweep workers for Algorithm 1 (0 = GOMAXPROCS)")
	shardWorkers := flag.Int("shard-workers", 0, "component-sharded Algorithm 2: solve independent contention components on this many workers (0 = off)")
	spatialIndex := flag.Bool("spatial-index", true, "prune the contention-graph pair scan with the uniform-grid spatial index (exact — the graph is bit-identical; false forces the full O(P²) scan)")
	gridCellM := flag.Float64("grid-cell-m", 0, "spatial-index grid cell size in meters (0 = the carrier-sense cutoff radius)")
	stream := flag.Bool("stream", false, "solve event-driven: feed each client through the streaming controller as an arrival event instead of one batch AutoConfigure, and report the stream statistics")
	switchMargin := flag.Float64("switch-margin", core.DefaultGateMargin, "hysteresis: minimum relative goodput gain a channel switch must offer (with -stream; negative disables)")
	switchStreak := flag.Int("switch-streak", 1, "hysteresis: consecutive evaluations that must propose the same switch before it commits (with -stream; default 1 so a one-shot solve can commit)")
	switchRate := flag.Float64("switch-rate", core.DefaultGateRatePerHour, "per-AP sustained switch-rate limit, switches/hour (with -stream; negative disables)")
	switchBurst := flag.Int("switch-burst", core.DefaultGateBurst, "per-AP switch token-bucket burst capacity (with -stream)")
	traceSample := flag.Int("trace-sample", 0, "per-event pipeline span tracing: trace every Nth stream event, served at /debug/trace (0 = off, 1 = everything; with -stream)")
	traceRing := flag.Int("trace-ring", 0, "finished-span ring capacity behind /debug/trace (0 = default 4096)")
	sloP99 := flag.Float64("slo-p99-ms", 0, "decision-latency SLO: breach when the windowed p99 exceeds this many milliseconds, served at /debug/slo (0 = off; with -stream)")
	sloProfile := flag.String("slo-profile", "", "capture a 5s CPU profile to this file on the first SLO breach per cooldown (with -slo-p99-ms)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		logger.Fatalf("acornd: %v", err)
	}
	logger.SetLevel(lvl)

	net, clients, err := loadTopology(*topoPath)
	if err != nil {
		logger.Fatalf("acornd: %v", err)
	}

	// Tracing and SLO monitoring are built before the introspection server
	// so /debug/trace and /debug/slo can serve them.
	var tracer *obs.Tracer
	if *stream && *traceSample > 0 {
		tracer = core.NewStreamTracer(*traceRing, *traceSample, nil)
	}
	var slo *obs.SLO
	if *stream && *sloP99 > 0 {
		profilePath := *sloProfile
		slo = obs.NewSLO(obs.SLOOptions{
			Name:   "stream_decision_p99",
			Budget: time.Duration(*sloP99 * float64(time.Millisecond)),
			OnBreach: func(b obs.Breach) {
				logger.Warn("SLO breach", "slo", b.Name, "p", b.Quantile,
					"value", b.Value, "budget", b.Budget, "window", b.Count)
				if profilePath == "" {
					return
				}
				go func() {
					if err := profiling.CaptureCPU(profilePath, 5*time.Second); err != nil {
						logger.Warn("SLO breach profile capture failed", "err", err)
					} else {
						logger.Warn("SLO breach CPU profile captured", "path", profilePath)
					}
				}()
			},
		})
	}

	health := obs.NewHealth()
	var obsSrv *obs.IntrospectionServer
	if *obsAddr != "" {
		srvOpts := obs.ServerOptions{Health: health, Log: logger, Tracer: tracer}
		if slo != nil {
			srvOpts.SLOs = []*obs.SLO{slo}
		}
		obsSrv, err = obs.Serve(*obsAddr, srvOpts)
		if err != nil {
			logger.Fatalf("acornd: %v", err)
		}
		defer obsSrv.Close(0)
	}

	if *controller != "" {
		runAgents(net, clients, agentConfig{
			addr:         *controller,
			heartbeat:    *heartbeat,
			frame:        *frame,
			backoffMin:   *backoffMin,
			backoffMax:   *backoffMax,
			reportPeriod: *reportPeriod,
			duration:     *duration,
		}, health)
		return
	}

	ctrl, err := acorn.NewController(net, *seed)
	if err != nil {
		logger.Fatalf("acornd: %v", err)
	}
	ctrl.Alloc.Workers = *allocWorkers
	ctrl.Alloc.ShardWorkers = *shardWorkers
	ctrl.Alloc.NoSpatialIndex = !*spatialIndex
	ctrl.Alloc.GridCellM = *gridCellM
	ctrl.Assoc.Workers = *assocWorkers
	if *tracePath != "" {
		w := os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				logger.Fatalf("acornd: %v", err)
			}
			defer f.Close()
			w = f
		}
		ctrl.Trace = core.NewTraceWriter(w)
	}
	var solved atomic.Bool
	health.Register("solver", func() obs.CheckResult {
		if solved.Load() {
			return obs.OK("auto-configuration complete")
		}
		return obs.OK("solving")
	})
	var report *acorn.NetworkReport
	var streamStats *core.StreamStats
	if *stream {
		// Event-driven solve: each client is one arrival event through the
		// streaming controller (admission + bounded local re-optimization,
		// every switch judged by the anti-flap gate), instead of one batch
		// AutoConfigure. Pump synchronously until the queue drains.
		sc := core.NewStreamController(ctrl, core.StreamOptions{
			Gate: core.GateOptions{
				Margin:      *switchMargin,
				Streak:      *switchStreak,
				RatePerHour: *switchRate,
				Burst:       *switchBurst,
			},
			Tracer: tracer,
			SLO:    slo,
		})
		for _, c := range clients {
			sc.Offer(core.Event{Kind: core.EventArrive, Client: c})
		}
		for sc.Pump() > 0 {
		}
		// Anchor with the periodic tick (roaming sweep + whole-network
		// pass) so the one-shot solve does not depend on admission order.
		sc.FullPass()
		sc.Stop()
		st := sc.Stats()
		streamStats = &st
		report = net.Evaluate(ctrl.ConfigView())
	} else {
		report = ctrl.AutoConfigure(clients)
	}
	solved.Store(true)
	if ctrl.Trace != nil {
		if err := ctrl.Trace.Err(); err != nil {
			logger.Fatalf("acornd: trace: %v", err)
		}
	}
	cfg := ctrl.Config()
	defer holdObs(obsSrv, *obsHold)

	if *asJSON {
		out := map[string]any{"acorn": report}
		if streamStats != nil {
			out["stream"] = streamStats
		}
		if *compare {
			legacy := acorn.LegacyConfigure(net, clients)
			out["legacy"] = net.Evaluate(legacy)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			logger.Fatalf("acornd: %v", err)
		}
		return
	}

	if *dot {
		fmt.Print(net.InterferenceDOT(cfg))
		return
	}

	fmt.Println("ACORN configuration:")
	printReport(net, cfg, report)
	if st := streamStats; st != nil {
		fmt.Printf("  stream: %d events applied (%d coalesced), %d local re-opts, %d switches; gate: %d proposals, %d approved, %d margin / %d streak / %d rate vetoes\n",
			st.Applied, st.Coalesced, st.LocalReopts, st.SwitchesApplied,
			st.Gate.Proposals, st.Gate.Approved,
			st.Gate.MarginVetoes, st.Gate.StreakVetoes, st.Gate.RateVetoes)
	}
	if *compare {
		legacyCfg := acorn.LegacyConfigure(net, clients)
		legacyRep := net.Evaluate(legacyCfg)
		fmt.Println("\nLegacy [17] configuration:")
		printReport(net, legacyCfg, legacyRep)
		fmt.Printf("\nACORN/legacy total UDP throughput: %.2f / %.2f Mbit/s (%.2fx)\n",
			report.TotalUDP, legacyRep.TotalUDP, report.TotalUDP/legacyRep.TotalUDP)
	}
}

// holdObs keeps the process alive after a one-shot solve so the -obs-addr
// endpoints stay scrapeable (the obs smoke test depends on this).
func holdObs(srv *obs.IntrospectionServer, d time.Duration) {
	if srv == nil || d <= 0 {
		return
	}
	logger.Infof("holding obs endpoints on %s for %v", srv.Addr(), d)
	time.Sleep(d)
}

func printReport(net *acorn.Network, cfg *acorn.Config, rep *acorn.NetworkReport) {
	for _, cell := range rep.Cells {
		fmt.Printf("  %-6s %-14v M=%.2f  UDP %7.2f  TCP %7.2f  clients %v\n",
			cell.APID, cell.Channel, cell.AccessShare,
			cell.ThroughputUDP, cell.ThroughputTCP, cfg.ClientsOf(cell.APID))
	}
	fmt.Printf("  total: UDP %.2f Mbit/s, TCP %.2f Mbit/s\n", rep.TotalUDP, rep.TotalTCP)
}

func loadTopology(path string) (*acorn.Network, []*acorn.Client, error) {
	if path == "" {
		return demoTopology()
	}
	return topofile.Load(path)
}

// demoTopology is a small mixed-quality WLAN showing off both ACORN
// mechanisms: quality grouping and width selection.
func demoTopology() (*acorn.Network, []*acorn.Client, error) {
	aps := []*acorn.AP{
		{ID: "AP1", Pos: acorn.Point{X: 0, Y: 0}, TxPower: 18},
		{ID: "AP2", Pos: acorn.Point{X: 120, Y: 0}, TxPower: 18},
		{ID: "AP3", Pos: acorn.Point{X: 60, Y: 100}, TxPower: 18},
	}
	wall := func(db float64) map[string]units.DB {
		m := make(map[string]units.DB, len(aps))
		for _, ap := range aps {
			m[ap.ID] = units.DB(db)
		}
		return m
	}
	clients := []*acorn.Client{
		{ID: "u1", Pos: acorn.Point{X: 4, Y: 3}},
		{ID: "u2", Pos: acorn.Point{X: 7, Y: -4}},
		{ID: "u3", Pos: acorn.Point{X: 116, Y: 5}},
		{ID: "u4", Pos: acorn.Point{X: 124, Y: -3}, ExtraLoss: wall(18)},
		{ID: "u5", Pos: acorn.Point{X: 63, Y: 104}, ExtraLoss: wall(54)},
		{ID: "u6", Pos: acorn.Point{X: 55, Y: 97}, ExtraLoss: wall(53)},
	}
	return acorn.NewNetwork(aps, clients), clients, nil
}
