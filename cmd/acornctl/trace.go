package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"time"

	"acorn/internal/obs"
)

// traceCmd implements `acornctl trace`: fetch a process's /debug/trace and
// /debug/slo endpoints (exposed via -obs-addr with -trace-sample) and
// render the slowest recent spans with a per-stage breakdown.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "introspection address (the target's -obs-addr)")
	n := fs.Int("n", 200, "how many recent spans to fetch")
	top := fs.Int("top", 10, "how many spans to print, slowest first")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP timeout")
	_ = fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *addr

	spans, err := fetchSpans(client, fmt.Sprintf("%s/debug/trace?n=%d", base, *n))
	if err != nil {
		logger.Fatalf("acornctl trace: %v", err)
	}

	var slos []obs.SLOStatus
	if err := fetchJSON(client, base+"/debug/slo", &slos); err == nil {
		for _, st := range slos {
			state := "ok"
			if st.Breached {
				state = "BREACHED"
			}
			fmt.Printf("slo %-28s p%-5g %8.3fms / budget %.3fms  [%s]  window=%d breaches=%d\n",
				st.Name, st.Quantile*100, st.CurrentMs, st.BudgetMs,
				state, st.WindowCount, st.Breaches)
		}
		if len(slos) > 0 {
			fmt.Println()
		}
	}

	if len(spans) == 0 {
		fmt.Println("no spans recorded (is the target running with -trace-sample > 0?)")
		return
	}

	sort.Slice(spans, func(i, j int) bool { return spans[i].TotalNs > spans[j].TotalNs })
	if len(spans) > *top {
		spans = spans[:*top]
	}
	fmt.Printf("slowest %d of %d spans:\n", len(spans), *n)
	for _, sp := range spans {
		key := sp.Key
		if key != "" {
			key = " " + key
		}
		fmt.Printf("  #%-6d %-8s%s  total %s\n",
			sp.ID, sp.Kind, key, time.Duration(sp.TotalNs))
		// Stages sorted by duration, largest first, with their share.
		type kv struct {
			name string
			ns   int64
		}
		stages := make([]kv, 0, len(sp.Stages))
		for name, ns := range sp.Stages {
			stages = append(stages, kv{name, ns})
		}
		sort.Slice(stages, func(i, j int) bool {
			if stages[i].ns != stages[j].ns {
				return stages[i].ns > stages[j].ns
			}
			return stages[i].name < stages[j].name
		})
		for _, st := range stages {
			share := 0.0
			if sp.TotalNs > 0 {
				share = 100 * float64(st.ns) / float64(sp.TotalNs)
			}
			fmt.Printf("    %-10s %12s  %5.1f%%\n", st.name, time.Duration(st.ns), share)
		}
		attrs := make([]string, 0, len(sp.Attrs))
		for name := range sp.Attrs {
			attrs = append(attrs, name)
		}
		sort.Strings(attrs)
		for _, name := range attrs {
			fmt.Printf("    %-10s %12s  (n=%d, attribution)\n",
				name, time.Duration(sp.Attrs[name]), sp.Counts[name])
		}
	}
}

// fetchSpans GETs a /debug/trace JSONL stream and decodes each line.
func fetchSpans(client *http.Client, url string) ([]obs.SpanView, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	var spans []obs.SpanView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp obs.SpanView
		if err := json.Unmarshal(line, &sp); err != nil {
			return nil, fmt.Errorf("%s: bad span line: %v", url, err)
		}
		spans = append(spans, sp)
	}
	return spans, sc.Err()
}
