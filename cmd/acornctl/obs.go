package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"acorn/internal/obs"
)

// obsCmd implements `acornctl obs`: fetch a process's introspection
// endpoints and render a human-readable snapshot.
func obsCmd(args []string) {
	fs := flag.NewFlagSet("obs", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "introspection address (the target's -obs-addr)")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP timeout")
	_ = fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *addr

	var health struct {
		Status string                     `json:"status"`
		Checks map[string]obs.CheckResult `json:"checks"`
	}
	if err := fetchJSON(client, base+"/healthz", &health); err != nil {
		logger.Fatalf("acornctl obs: %v", err)
	}
	var vars struct {
		Metrics []obs.MetricSnapshot `json:"metrics"`
		Runtime map[string]any       `json:"runtime"`
	}
	if err := fetchJSON(client, base+"/debug/vars", &vars); err != nil {
		logger.Fatalf("acornctl obs: %v", err)
	}

	fmt.Printf("%s — status: %s\n", *addr, health.Status)
	names := make([]string, 0, len(health.Checks))
	for name := range health.Checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := health.Checks[name]
		mark := "ok "
		if !c.OK {
			mark = "BAD"
		}
		fmt.Printf("  [%s] %-16s %s\n", mark, name, c.Detail)
	}

	if gr, ok := vars.Runtime["goroutines"]; ok {
		fmt.Printf("\nruntime: goroutines=%v heap_alloc=%v num_gc=%v\n",
			gr, vars.Runtime["heap_alloc"], vars.Runtime["num_gc"])
	}

	fmt.Printf("\nmetrics (%d):\n", len(vars.Metrics))
	for _, m := range vars.Metrics {
		switch {
		case m.Kind == "histogram" && m.Count != nil:
			mean := 0.0
			if *m.Count > 0 && m.Sum != nil {
				mean = *m.Sum / float64(*m.Count)
			}
			fmt.Printf("  %-44s count=%d mean=%s\n", m.Name, *m.Count, formatShort(mean))
		case len(m.Series) > 0:
			fmt.Printf("  %-44s by %s:\n", m.Name, m.Label)
			labels := make([]string, 0, len(m.Series))
			for l := range m.Series {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				fmt.Printf("    %-42s %s\n", l, formatShort(m.Series[l]))
			}
		case m.Value != nil:
			fmt.Printf("  %-44s %s\n", m.Name, formatShort(*m.Value))
		}
	}
}

// fetchJSON GETs url and decodes the body. /healthz answers 503 when
// degraded, so any status that still carries JSON is accepted.
func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("%s: %v (HTTP %d)", url, err, resp.StatusCode)
	}
	return nil
}

func formatShort(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
