package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"acorn/internal/fleetsim"
)

// fleet runs the in-process fleet simulator: thousands of reconnecting
// agents against a real sharded controller, measuring convergence, push
// tail latency, bytes on the wire, and behavior under churn and storms.
func fleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	agents := fs.Int("agents", 1000, "fleet size (in-process agents)")
	frame := fs.Int("frame", 2, "wire framing the agents request: 2 = binary frames, 1 = JSON lines")
	serverShards := fs.Int("server-shards", 0, "controller accept/IO shards (0 = min(8, GOMAXPROCS))")
	duration := fs.Duration("duration", 3*time.Second, "steady-state phase length")
	reportPeriod := fs.Duration("report-period", 2*time.Second, "per-agent report cadence, jittered +/-50%")
	heartbeat := fs.Duration("heartbeat", 5*time.Second, "agent ping cadence")
	churn := fs.Float64("churn", 0, "fraction of agents whose connection is killed once mid-run")
	storm := fs.Float64("storm", 0, "fraction of agents that fire one back-to-back report burst")
	transport := fs.String("transport", "pipe", "agent transport: pipe (in-memory, fd-free) or tcp (loopback)")
	seed := fs.Int64("seed", 42, "topology, jitter, churn and storm seed")
	asJSON := fs.Bool("json", false, "emit the fleetsim.Result as JSON")
	logLevel := fs.String("log-level", "info", "log threshold: debug|info|warn|error|off")
	_ = fs.Parse(args)
	setLevel(*logLevel)

	res, err := fleetsim.Run(context.Background(), fleetsim.Options{
		Agents:         *agents,
		Frame:          *frame,
		Shards:         *serverShards,
		Duration:       *duration,
		ReportInterval: *reportPeriod,
		Heartbeat:      *heartbeat,
		ChurnFrac:      *churn,
		StormFrac:      *storm,
		Transport:      *transport,
		Seed:           *seed,
		Log:            logger,
	})
	if err != nil {
		logger.Fatalf("acornctl fleet: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			logger.Fatalf("acornctl fleet: %v", err)
		}
		return
	}
	fmt.Printf("fleet: %d agents (frame v%d, %s transport)\n", res.Agents, res.Frame, *transport)
	fmt.Printf("  converged:      %v in %v\n", res.Converged, res.ConvergeTime.Round(time.Millisecond))
	fmt.Printf("  reports:        %d applied (%.0f/s sustained), %d coalesced in shard queues, %d shed\n",
		res.ReportsApplied, res.ReportsPerSec, res.ShardCoalesced, res.ShardShed)
	fmt.Printf("  pushes:         %d enqueued, %d deduped, %d errors\n",
		res.PushesEnqueued, res.PushesDeduped, res.PushErrors)
	fmt.Printf("  push latency:   p50 %v, p99 %v\n",
		res.PushP50.Round(time.Microsecond), res.PushP99.Round(time.Microsecond))
	fmt.Printf("  wire:           %d bytes total (server tx+rx)\n", res.BytesOnWire)
	fmt.Printf("  churn:          %d resets, %d sessions, %d memberships lost\n",
		res.Resets, res.Sessions, res.MembershipLost)
	if len(res.ReallocStages) > 0 {
		fmt.Printf("  realloc stages:")
		for _, st := range []string{"queue", "view", "assoc", "alloc", "gate", "push"} {
			if ns, ok := res.ReallocStages[st]; ok {
				fmt.Printf(" %s=%v", st, time.Duration(ns).Round(time.Microsecond))
			}
		}
		fmt.Println()
	}
}
