// Command acornctl runs ACORN's networked control plane.
//
//	acornctl serve -addr :7431 [-period 30m]
//	    Run the central controller: accept agent connections and
//	    reallocate channels every period.
//
//	acornctl demo
//	    Spin up a controller and three in-process agents with canned
//	    measurements, run one reallocation, and print the assignments —
//	    the zero-dependency way to watch the protocol work.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"acorn/internal/ctlnet"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: acornctl serve|demo [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "demo":
		demo()
	default:
		fmt.Fprintf(os.Stderr, "acornctl: unknown command %q\n", os.Args[1])
		os.Exit(2)
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7431", "listen address")
	period := fs.Duration("period", 30*time.Minute, "reallocation period (the paper's T)")
	seed := fs.Int64("seed", 1, "allocation seed")
	_ = fs.Parse(args)

	s := ctlnet.NewServer(*seed)
	s.Logf = log.Printf
	go func() {
		ticker := time.NewTicker(*period)
		defer ticker.Stop()
		for range ticker.C {
			if assigns, err := s.Reallocate(); err == nil {
				log.Printf("reallocated %d APs", len(assigns))
			} else {
				log.Printf("reallocation skipped: %v", err)
			}
		}
	}()
	if err := ctlnet.ListenAndServe(*addr, s); err != nil {
		log.Fatal(err)
	}
}

func demo() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	s := ctlnet.NewServer(1)
	go func() { _ = s.Serve(l) }()
	defer s.Close()

	// Three APs: two contend with each other; AP3 is isolated with poor
	// clients.
	specs := []struct {
		id    string
		hears []string
		snrs  []float64
	}{
		{"AP1", []string{"AP2"}, []float64{28, 31}},
		{"AP2", []string{"AP1"}, []float64{24, 26}},
		{"AP3", nil, []float64{-1.5, -1.0}},
	}
	var agents []*ctlnet.Agent
	for _, sp := range specs {
		a, err := ctlnet.Dial(l.Addr().String(), ctlnet.Hello{APID: sp.id, TxPowerDBm: 18})
		if err != nil {
			log.Fatal(err)
		}
		defer a.Close()
		rep := ctlnet.Report{Hears: sp.hears}
		for i, snr := range sp.snrs {
			rep.Clients = append(rep.Clients, ctlnet.ClientObs{
				ClientID: fmt.Sprintf("sta%d", i+1), SNR20dB: snr,
			})
		}
		if err := a.SendReport(rep); err != nil {
			log.Fatal(err)
		}
		agents = append(agents, a)
	}
	// Let the reports land, then reallocate.
	time.Sleep(100 * time.Millisecond)
	assigns, err := s.Reallocate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("controller assignments:")
	for _, sp := range specs {
		fmt.Printf("  %-4s → %v\n", sp.id, assigns[sp.id])
	}
	for i, a := range agents {
		select {
		case ch := <-a.Updates():
			fmt.Printf("  agent %s received %v\n", specs[i].id, ch)
		case <-time.After(2 * time.Second):
			fmt.Printf("  agent %s received nothing\n", specs[i].id)
		}
	}
}
