// Command acornctl runs ACORN's networked control plane.
//
//	acornctl serve -addr :7431 [-period 30m] [-report-ttl 3h]
//	              [-hello-timeout 10s] [-peer-timeout 90s]
//	              [-server-shards 0] [-shard-queue 4096]
//	              [-stream] [-stream-debounce 25ms] [-stream-watchdog 0]
//	              [-switch-margin 0.02] [-switch-streak 2]
//	              [-switch-rate 12] [-switch-burst 3]
//	    Run the central controller: accept agent connections and
//	    reallocate channels every period. Reports older than -report-ttl
//	    are quarantined at reallocation time (the AP's last-known-good
//	    view is still used, and the quarantine is logged); if every
//	    report is stale the reallocation is skipped.
//
//	    With -stream the controller is event-driven instead of periodic:
//	    every fresh report marks its AP dirty, bursts are debounced and
//	    coalesced, and a reallocation restricted to the dirty APs' hear-
//	    graph neighbourhood runs immediately — with every proposed channel
//	    switch gated by goodput hysteresis (-switch-margin sustained over
//	    -switch-streak consecutive evaluations) and a per-AP token bucket
//	    (-switch-rate switches/hour, burst -switch-burst), so the network
//	    never flaps no matter how noisy the reports. A watchdog forces a
//	    full pass when the last one is older than -stream-watchdog
//	    (default: -period), so vetoed or failed work is never stranded.
//
//	acornctl agent -addr host:7431 -id AP1 [-report meas.json]
//	              [-period 30s] [-heartbeat 15s] [-frame 2]
//	              [-backoff-min 500ms] [-backoff-max 1m]
//	    Run one AP agent with automatic reconnection: jittered
//	    exponential backoff between attempts, hello re-sent on every
//	    attempt, and the last report replayed after each reconnect. The
//	    report file holds a ctlnet.Report in JSON ("clients" and "hears"
//	    fields); omitted, the agent reports a clientless AP.
//
//	acornctl demo [-chaos]
//	    Spin up a controller and three in-process agents with canned
//	    measurements, run one reallocation, and print the assignments —
//	    the zero-dependency way to watch the protocol work. With -chaos
//	    the wire is wrapped in a fault injector (connection resets,
//	    delays, corrupt bytes) and the agents reconnect through the
//	    faults until the allocation converges anyway.
//
//	acornctl fleet [-agents 1000] [-frame 2] [-server-shards 0]
//	              [-duration 3s] [-report-period 2s] [-heartbeat 5s]
//	              [-churn 0.1] [-storm 0.1] [-transport pipe] [-json]
//	    Boot an in-process fleet of reconnecting agents against a real
//	    sharded controller and measure the control plane at scale:
//	    convergence time, sustained report rate, push tail latency,
//	    bytes on the wire, and recovery from connection churn and
//	    report storms. The default pipe transport needs no file
//	    descriptors, so fleets of tens of thousands fit in one process.
//
//	acornctl obs -addr host:port
//	    Fetch a running process's introspection endpoints (-obs-addr on
//	    acornd or acornctl serve/agent) and pretty-print the health
//	    checks and a metrics snapshot.
//
//	acornctl trace -addr host:port [-n 200] [-top 10]
//	    Fetch /debug/trace and /debug/slo from a process started with
//	    -trace-sample (and optionally -slo-p99-ms) and print the slowest
//	    recent spans with per-stage latency breakdowns plus SLO status.
//
// serve also accepts -trace-sample N (record every Nth reallocation pass
// as a span: queue/view/assoc/alloc/gate/push stage timings at
// /debug/trace) and, with -stream, -slo-p99-ms B (watch the windowed p99
// of receipt-to-push latency against a budget of B ms at /debug/slo,
// optionally capturing a CPU profile to -slo-profile on breach).
//
// serve and agent accept -obs-addr to expose their own /metrics, /healthz,
// /debug/vars and pprof endpoints, and -log-level to set the log
// threshold (debug|info|warn|error|off).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"acorn/internal/core"
	"acorn/internal/ctlnet"
	"acorn/internal/faultnet"
	"acorn/internal/obs"
	"acorn/internal/profiling"
	"acorn/internal/spectrum"
)

// logger is the process logger; -log-level re-levels it.
var logger = obs.DefaultLogger.Named("acornctl")

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: acornctl serve|agent|demo|fleet|obs|trace [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "agent":
		agent(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	case "fleet":
		fleet(os.Args[2:])
	case "obs":
		obsCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "acornctl: unknown command %q\n", os.Args[1])
		os.Exit(2)
	}
}

// setLevel applies a -log-level flag value to the process logger.
func setLevel(s string) {
	lvl, err := obs.ParseLevel(s)
	if err != nil {
		logger.Fatalf("acornctl: %v", err)
	}
	logger.SetLevel(lvl)
}

// serveObs starts the introspection server when addr is non-empty.
func serveObs(addr string, health *obs.Health) *obs.IntrospectionServer {
	if addr == "" {
		return nil
	}
	srv, err := obs.Serve(addr, obs.ServerOptions{Health: health, Log: logger})
	if err != nil {
		logger.Fatalf("acornctl: %v", err)
	}
	return srv
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7431", "listen address")
	period := fs.Duration("period", 30*time.Minute, "reallocation period (the paper's T)")
	seed := fs.Int64("seed", 1, "allocation seed")
	reportTTL := fs.Duration("report-ttl", 3*time.Hour, "max report age before quarantine (0 disables aging)")
	helloTimeout := fs.Duration("hello-timeout", ctlnet.DefaultHelloTimeout, "deadline for the first message on a new connection")
	peerTimeout := fs.Duration("peer-timeout", ctlnet.DefaultPeerTimeout, "idle deadline between agent messages; keep it >= 3x the agents' -heartbeat")
	logLevel := fs.String("log-level", "info", "log threshold: debug|info|warn|error|off")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /healthz, /debug/vars and pprof on this address")
	allocWorkers := fs.Int("alloc-workers", 0, "parallel rank-evaluation workers for Algorithm 2 (0 = GOMAXPROCS)")
	assocWorkers := fs.Int("assoc-workers", 0, "parallel roaming-sweep workers for Algorithm 1 (0 = GOMAXPROCS)")
	shardWorkers := fs.Int("shard-workers", 0, "component-sharded Algorithm 2: solve independent contention components on this many workers (0 = off)")
	serverShards := fs.Int("server-shards", 0, "inbound accept/IO shards feeding the controller through bounded queues (0 = min(8, GOMAXPROCS))")
	shardQueue := fs.Int("shard-queue", 0, "per-shard report queue capacity; a full queue sheds oldest-first (0 = default 4096)")
	spatialIndex := fs.Bool("spatial-index", true, "prune the contention-graph pair scan with the uniform-grid spatial index (exact — the graph is bit-identical; false forces the full O(P²) scan)")
	gridCellM := fs.Float64("grid-cell-m", 0, "spatial-index grid cell size in meters (0 = the carrier-sense cutoff radius)")
	stream := fs.Bool("stream", false, "event-driven mode: reallocate the dirty hear-graph neighbourhood on every fresh report instead of waiting for -period")
	streamDebounce := fs.Duration("stream-debounce", ctlnet.DefaultStreamDebounce, "wake-to-drain delay coalescing report bursts (with -stream; negative disables)")
	streamWatchdog := fs.Duration("stream-watchdog", 0, "max age of the last full pass before the stream forces one (with -stream; 0 = -period, negative disables)")
	switchMargin := fs.Float64("switch-margin", core.DefaultGateMargin, "hysteresis: minimum relative goodput gain a channel switch must offer (with -stream; negative disables)")
	switchStreak := fs.Int("switch-streak", core.DefaultGateStreak, "hysteresis: consecutive evaluations that must propose the same switch before it commits (with -stream)")
	switchRate := fs.Float64("switch-rate", core.DefaultGateRatePerHour, "per-AP sustained switch-rate limit, switches/hour (with -stream; negative disables)")
	switchBurst := fs.Int("switch-burst", core.DefaultGateBurst, "per-AP switch token-bucket burst capacity (with -stream)")
	traceSample := fs.Int("trace-sample", 0, "pass span tracing: trace every Nth reallocation pass, served at /debug/trace (0 = off, 1 = everything)")
	traceRing := fs.Int("trace-ring", 0, "finished-span ring capacity behind /debug/trace (0 = default 4096)")
	sloP99 := fs.Float64("slo-p99-ms", 0, "pass-latency SLO: breach when the windowed p99 of receipt-to-push latency exceeds this many milliseconds, served at /debug/slo (0 = off; with -stream)")
	sloProfile := fs.String("slo-profile", "", "capture a 5s CPU profile to this file on the first SLO breach per cooldown (with -slo-p99-ms)")
	_ = fs.Parse(args)
	setLevel(*logLevel)

	s := ctlnet.NewServer(*seed)
	s.Log = logger
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = ctlnet.NewServerTracer(*traceRing, *traceSample, nil)
		s.Tracer = tracer
	}
	var slo *obs.SLO
	if *stream && *sloP99 > 0 {
		profilePath := *sloProfile
		slo = obs.NewSLO(obs.SLOOptions{
			Name:   "ctlnet_pass_p99",
			Budget: time.Duration(*sloP99 * float64(time.Millisecond)),
			OnBreach: func(b obs.Breach) {
				logger.Warn("SLO breach", "slo", b.Name, "p", b.Quantile,
					"value", b.Value, "budget", b.Budget, "window", b.Count)
				if profilePath == "" {
					return
				}
				go func() {
					if err := profiling.CaptureCPU(profilePath, 5*time.Second); err != nil {
						logger.Warn("SLO breach profile capture failed", "err", err)
					} else {
						logger.Warn("SLO breach CPU profile captured", "path", profilePath)
					}
				}()
			},
		})
		s.SLO = slo
	}
	s.Alloc.Workers = *allocWorkers
	s.Alloc.ShardWorkers = *shardWorkers
	s.Alloc.NoSpatialIndex = !*spatialIndex
	s.Alloc.GridCellM = *gridCellM
	s.Assoc.Workers = *assocWorkers
	s.Shards = ctlnet.ShardConfig{N: *serverShards, QueueCap: *shardQueue}
	s.ReportTTL = *reportTTL
	s.HelloTimeout = *helloTimeout
	s.PeerTimeout = *peerTimeout
	if *stream {
		wd := *streamWatchdog
		if wd == 0 {
			wd = *period
		}
		s.Stream = ctlnet.StreamConfig{
			Enabled:        true,
			Debounce:       *streamDebounce,
			WatchdogPeriod: wd,
			Gate: core.GateOptions{
				Margin:      *switchMargin,
				Streak:      *switchStreak,
				RatePerHour: *switchRate,
				Burst:       *switchBurst,
			},
		}
	}

	health := obs.NewHealth()
	health.Register("agents", func() obs.CheckResult {
		ids := s.ConnectedAgents()
		if len(ids) == 0 {
			return obs.Bad("no agents connected")
		}
		return obs.OK(fmt.Sprintf("%d connected: %v", len(ids), ids))
	})
	maxAge := 3 * *period
	health.Register("reallocation", func() obs.CheckResult {
		last, ok := s.LastReallocation()
		if !ok {
			return obs.OK("no reallocation yet")
		}
		age := time.Since(last).Round(time.Second)
		if age > maxAge {
			return obs.Bad(fmt.Sprintf("last reallocation %v ago (period %v)", age, *period))
		}
		return obs.OK(fmt.Sprintf("last reallocation %v ago", age))
	})
	if *obsAddr != "" {
		srvOpts := obs.ServerOptions{Health: health, Log: logger, Tracer: tracer}
		if slo != nil {
			srvOpts.SLOs = []*obs.SLO{slo}
		}
		srv, err := obs.Serve(*obsAddr, srvOpts)
		if err != nil {
			logger.Fatalf("acornctl: %v", err)
		}
		defer srv.Close(0)
	}

	if *stream {
		// The stream's own watchdog forces the periodic full passes, so the
		// ticker would only double them up.
		logger.Infof("stream mode: event-driven reallocation, full pass at least every %v", s.Stream.WatchdogPeriod)
	} else {
		go func() {
			ticker := time.NewTicker(*period)
			defer ticker.Stop()
			for range ticker.C {
				if assigns, err := s.Reallocate(); err == nil {
					logger.Infof("reallocated %d APs", len(assigns))
				} else {
					logger.Warnf("reallocation skipped: %v", err)
				}
			}
		}()
	}
	if err := ctlnet.ListenAndServe(*addr, s); err != nil {
		logger.Fatalf("acornctl: %v", err)
	}
}

func agent(args []string) {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7431", "controller address")
	id := fs.String("id", "", "AP id (required)")
	txPower := fs.Float64("txpower", 18, "AP transmit power in dBm")
	reportPath := fs.String("report", "", "JSON file with the ctlnet.Report to stream (empty = clientless)")
	period := fs.Duration("period", 30*time.Second, "measurement report interval")
	heartbeat := fs.Duration("heartbeat", ctlnet.DefaultHeartbeatInterval, "ping interval keeping the session alive")
	frame := fs.Int("frame", 2, "wire framing version to request: 2 = batched binary frames (falls back to JSON against an old controller), 1 = JSON lines")
	backoffMin := fs.Duration("backoff-min", 500*time.Millisecond, "first reconnect delay")
	backoffMax := fs.Duration("backoff-max", time.Minute, "reconnect delay cap")
	logLevel := fs.String("log-level", "info", "log threshold: debug|info|warn|error|off")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /healthz, /debug/vars and pprof on this address")
	_ = fs.Parse(args)
	setLevel(*logLevel)
	if *id == "" {
		logger.Fatalf("acornctl agent: -id is required")
	}
	rep := ctlnet.Report{}
	if *reportPath != "" {
		data, err := os.ReadFile(*reportPath)
		if err != nil {
			logger.Fatalf("acornctl agent: %v", err)
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			logger.Fatalf("acornctl agent: bad report file: %v", err)
		}
	}

	ra, err := ctlnet.NewReconnectingAgent(context.Background(), *addr,
		ctlnet.Hello{APID: *id, TxPowerDBm: *txPower},
		ctlnet.ReconnectOptions{
			Backoff: ctlnet.Backoff{Min: *backoffMin, Max: *backoffMax},
			Agent:   ctlnet.AgentOptions{HeartbeatInterval: *heartbeat, Frame: *frame},
			Log:     logger,
		})
	if err != nil {
		logger.Fatalf("acornctl agent: %v", err)
	}
	defer ra.Close()

	health := obs.NewHealth()
	health.Register("controller", func() obs.CheckResult {
		if ra.Connected() {
			return obs.OK(fmt.Sprintf("connected to %s (%d sessions, rtt sampled via metrics)", *addr, ra.Sessions()))
		}
		detail := "disconnected"
		if err := ra.LastErr(); err != nil {
			detail = fmt.Sprintf("disconnected: %v", err)
		}
		return obs.Bad(detail)
	})
	if srv := serveObs(*obsAddr, health); srv != nil {
		defer srv.Close(0)
	}

	if err := ra.SendReport(rep); err != nil {
		logger.Fatalf("acornctl agent: %v", err)
	}
	logger.Infof("agent %s reporting to %s every %v", *id, *addr, *period)
	ticker := time.NewTicker(*period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := ra.SendReport(rep); err != nil {
				logger.Fatalf("acornctl agent: %v", err)
			}
		case ch := <-ra.Updates():
			logger.Info("assignment received", "ap", *id, "channel", ch)
		}
	}
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	chaos := fs.Bool("chaos", false, "inject connection resets, delays, and corrupt bytes on the wire")
	_ = fs.Parse(args)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Fatalf("acornctl demo: %v", err)
	}
	var inj *faultnet.Injector
	listener := l
	s := ctlnet.NewServer(1)
	s.Log = logger
	if *chaos {
		inj = faultnet.NewInjector(faultnet.Config{
			Seed:          time.Now().UnixNano(),
			ConnResetProb: 0.5,
			ResetAfterOps: 10,
			DelayProb:     0.25,
			MaxDelay:      2 * time.Millisecond,
			CorruptProb:   0.03,
		})
		listener = inj.WrapListener(l)
		s.HelloTimeout = 300 * time.Millisecond
		s.PeerTimeout = 500 * time.Millisecond
		fmt.Println("chaos mode: ~50% of connections get reset, messages are delayed and occasionally corrupted")
	}
	go func() { _ = s.Serve(listener) }()
	defer s.Close()

	// Three APs: two contend with each other; AP3 is isolated with poor
	// clients.
	specs := []struct {
		id    string
		hears []string
		snrs  []float64
	}{
		{"AP1", []string{"AP2"}, []float64{28, 31}},
		{"AP2", []string{"AP1"}, []float64{24, 26}},
		{"AP3", nil, []float64{-1.5, -1.0}},
	}
	buildReport := func(hears []string, snrs []float64) ctlnet.Report {
		rep := ctlnet.Report{Hears: hears}
		for i, snr := range snrs {
			rep.Clients = append(rep.Clients, ctlnet.ClientObs{
				ClientID: fmt.Sprintf("sta%d", i+1), SNR20dB: snr,
			})
		}
		return rep
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agents []*ctlnet.ReconnectingAgent
	for _, sp := range specs {
		ra, err := ctlnet.NewReconnectingAgent(ctx, l.Addr().String(),
			ctlnet.Hello{APID: sp.id, TxPowerDBm: 18},
			ctlnet.ReconnectOptions{
				Backoff: ctlnet.Backoff{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
				Agent: ctlnet.AgentOptions{
					HeartbeatInterval: 20 * time.Millisecond,
					PeerTimeout:       500 * time.Millisecond,
				},
			})
		if err != nil {
			logger.Fatalf("acornctl demo: %v", err)
		}
		defer ra.Close()
		if err := ra.SendReport(buildReport(sp.hears, sp.snrs)); err != nil {
			logger.Fatalf("acornctl demo: %v", err)
		}
		agents = append(agents, ra)
	}

	if *chaos {
		// Let the faults fly for a while, reallocating through them.
		end := time.Now().Add(1500 * time.Millisecond)
		for time.Now().Before(end) {
			_, _ = s.Reallocate()
			time.Sleep(100 * time.Millisecond)
		}
		st := inj.Stats()
		fmt.Printf("injected faults: %d/%d connections reset, %d delays, %d corruptions\n",
			st.Resets, st.Conns, st.Delays, st.Corruptions)
		inj.Disable()
		for i, ra := range agents {
			fmt.Printf("  agent %s survived %d sessions\n", specs[i].id, ra.Sessions())
		}
	} else {
		// Let the reports land.
		time.Sleep(100 * time.Millisecond)
	}

	// Final (or only) reallocation on a calm network.
	var assigns map[string]spectrum.Channel
	deadline := time.Now().Add(10 * time.Second)
	for {
		assigns, err = s.Reallocate()
		if err == nil && len(assigns) == len(specs) {
			break
		}
		if time.Now().After(deadline) {
			logger.Fatalf("demo never converged: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("controller assignments:")
	for _, sp := range specs {
		fmt.Printf("  %-4s → %v\n", sp.id, assigns[sp.id])
	}
	for i, ra := range agents {
		wait := time.Now().Add(5 * time.Second)
		for ra.Current() != assigns[specs[i].id] && time.Now().Before(wait) {
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("  agent %s holds %v\n", specs[i].id, ra.Current())
	}
}
