// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-seed N] [-packets N] [list | all | <id>...]
//
// Ids: fig1 fig2 fig3a fig3b fig4 fig5 table1 fig6 fig8 fig9 fig10a fig10b
// fig11 table3 fig13away fig13toward fig14.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"acorn/internal/experiments"
	"acorn/internal/profiling"
	"acorn/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "base RNG seed for the system experiments")
	packets := flag.Int("packets", 0, "packets per Monte-Carlo point for the PHY experiments (0 = fast default; the paper uses 9000)")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines for the PHY experiments (0 = GOMAXPROCS); results are worker-count independent")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	htmlPath := flag.String("html", "", "also write a self-contained HTML report to this path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	phyOpts := experiments.PHYOptions{Packets: *packets, Seed: *seed, Workers: *workers}
	runners := map[string]func() string{
		"fig1":        func() string { return experiments.RunFig1(phyOpts).Format() },
		"fig2":        func() string { return experiments.RunFig2(phyOpts).Format() },
		"fig3a":       func() string { return experiments.RunFig3a(phyOpts).Format() },
		"fig3b":       func() string { return experiments.RunFig3b(phyOpts).Format() },
		"fig4":        func() string { return experiments.RunFig4(phyOpts).Format() },
		"fig5":        func() string { return experiments.RunFig5().Format() },
		"table1":      func() string { return experiments.RunTable1().Format() },
		"fig6":        func() string { return experiments.RunFig6(*seed).Format() },
		"fig8":        func() string { return experiments.RunFig8().Format() },
		"fig9":        func() string { return experiments.RunFig9(*seed).Format() },
		"fig10a":      func() string { return experiments.RunFig10Topology1(*seed).Format() },
		"fig10b":      func() string { return experiments.RunFig10Topology2(*seed).Format() },
		"fig11":       func() string { return experiments.RunFig11(*seed).Format() },
		"fig12":       func() string { return experiments.RunFig12().Format() },
		"table3":      func() string { return experiments.RunTable3(*seed).Format() },
		"fig13away":   func() string { return experiments.RunFig13Away().Format() },
		"fig13toward": func() string { return experiments.RunFig13Toward().Format() },
		"fig14":       func() string { return experiments.RunFig14(*seed).Format() },
		// Ablations and extensions (not paper figures).
		"abl-epsilon": func() string { return experiments.FormatEpsilon(experiments.AblationEpsilon(*seed)) },
		"abl-assoc":   func() string { return experiments.FormatAssociation(experiments.AblationAssociation(*seed)) },
		"abl-restart": func() string { return experiments.FormatRestarts(experiments.AblationRestarts(*seed)) },
		"abl-scan":    func() string { return experiments.FormatScanning(experiments.AblationScanning(*seed)) },
		"periodicity": func() string { return experiments.RunPeriodicity(*seed).Format() },
		"jammer":      func() string { return experiments.RunJammerSweep(phyOpts).Format() },
		"validation":  func() string { return experiments.RunModelValidation(*seed).Format() },
		"codedval":    func() string { return experiments.RunCodedValidation(phyOpts).Format() },
		"csi":         func() string { return experiments.RunCSIAblation(phyOpts).Format() },
	}
	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	args := flag.Args()
	if len(args) == 0 || args[0] == "list" {
		fmt.Println("available experiments:")
		for _, id := range ids {
			fmt.Println("  " + id)
		}
		return
	}
	want := args
	if args[0] == "all" {
		want = ids
	}
	var entries []report.Entry
	for _, id := range want {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		out := run()
		elapsed := time.Since(start)
		fmt.Printf("==================== %s ====================\n", id)
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *htmlPath != "" {
			entries = append(entries, report.Entry{
				ID: id, Title: report.TitleOf(out), Body: out, Elapsed: elapsed.Round(time.Millisecond),
			})
		}
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		page := report.Page{
			GeneratedBy: fmt.Sprintf("go run ./cmd/experiments (seed %d, packets %d)", *seed, *packets),
			Entries:     entries,
		}
		if err := report.Write(f, page); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlPath)
	}
}
