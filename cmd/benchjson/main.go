// Command benchjson converts `go test -bench` output on stdin into a JSON
// map from benchmark name to its measured figures, for the BENCH_phy.json
// trajectory the repo tracks across PRs. A "_meta" entry records the git
// commit the numbers were measured at, plus a git_dirty flag when the tree
// held uncommitted changes (omitted when git is unavailable); readers
// decoding into map[string]Result simply see it as a zero Result.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_phy.json
//
// -match keeps only benchmarks whose (suffix-stripped) name matches the
// regexp, so one bench run can be split into several artifact files.
// -derive key=Numer/Denom (repeatable) adds a derived entry whose ns_per_op
// is the ratio of two captured benchmarks — e.g. the reference/incremental
// allocator speedup — measured in the same run:
//
//	benchjson -match '^BenchmarkAlloc' \
//	    -derive alloc_speedup_200ap=BenchmarkAllocReference200AP/BenchmarkAllocIncremental200AP \
//	    < bench_output.txt > BENCH_alloc.json
//
// Benchmarks that report custom metrics via b.ReportMetric (any unit other
// than ns/op, B/op, allocs/op) have them captured under "extra", and a
// derive spec may ratio one of those instead of ns_per_op with a trailing
// :metric selector:
//
//	benchjson -match 'Goodput|StreamEvents' \
//	    -derive stream_goodput_ratio=BenchmarkStreamGoodput/BenchmarkPeriodicGoodput:goodput_mbps \
//	    < bench_output.txt > BENCH_stream.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result holds the figures of one benchmark line. Extra carries custom
// b.ReportMetric figures keyed by their unit string (e.g. "events/s",
// "goodput_mbps").
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// gomaxprocsSuffix strips the trailing "-N" the testing package appends to
// benchmark names, so entries stay stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// derivation is one -derive spec: out = metric(numer) / metric(denom),
// where metric defaults to ns_per_op and an optional ":name" suffix on the
// denominator selects another metric: one of the builtins ("ns_per_op",
// "bytes_per_op", "allocs_per_op") or a custom Extra metric by its unit.
type derivation struct {
	key, numer, denom string
	metric            string // "" means ns_per_op
}

// derivations collects repeated -derive flags.
type derivations []derivation

func (d *derivations) String() string { return fmt.Sprint(*d) }

func (d *derivations) Set(s string) error {
	key, expr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=Numer/Denom[:metric], got %q", s)
	}
	expr, metric, _ := strings.Cut(expr, ":")
	numer, denom, ok := strings.Cut(expr, "/")
	if !ok {
		return fmt.Errorf("want key=Numer/Denom[:metric], got %q", s)
	}
	*d = append(*d, derivation{key: key, numer: numer, denom: denom, metric: metric})
	return nil
}

func main() {
	match := flag.String("match", "", "keep only benchmarks whose name matches this regexp")
	var derives derivations
	flag.Var(&derives, "derive", "add key=NumerBench/DenomBench as a ns_per_op ratio (repeatable)")
	flag.Parse()

	var matchRE *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -match:", err)
			os.Exit(2)
		}
		matchRE = re
	}

	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		if matchRE != nil && !matchRE.MatchString(name) {
			continue
		}
		var r Result
		// Fields after the iteration count come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default: // custom b.ReportMetric unit
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		if r.NsPerOp > 0 {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := make(map[string]any, len(results)+len(derives)+1)
	for name, r := range results {
		out[name] = r
	}
	for _, d := range derives {
		numer, okN := results[d.numer]
		denom, okD := results[d.denom]
		nv, dv := numer.NsPerOp, denom.NsPerOp
		switch d.metric {
		case "", "ns_per_op":
		case "bytes_per_op":
			nv, dv = numer.BytesPerOp, denom.BytesPerOp
		case "allocs_per_op":
			nv, dv = numer.AllocsPerOp, denom.AllocsPerOp
		default:
			nv, dv = numer.Extra[d.metric], denom.Extra[d.metric]
		}
		if !okN || !okD || dv == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -derive %s: missing %s or %s (metric %q) in input; skipping\n",
				d.key, d.numer, d.denom, d.metric)
			continue
		}
		out[d.key] = map[string]float64{"ratio": nv / dv}
	}
	if sha := gitSHA(); sha != "" {
		meta := map[string]string{"git_sha": sha}
		if gitDirty() {
			// The stamp names HEAD, but the numbers were measured on top of
			// uncommitted changes — mark it so a stale-looking sha in a
			// committed artifact is a visible provenance bug, not a mystery.
			meta["git_dirty"] = "true"
		}
		out["_meta"] = meta
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gitSHA returns the current commit hash, or "" when not in a git checkout
// (the stamp is best-effort provenance, never a failure).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// gitDirty reports whether tracked files differ from HEAD — excluding the
// BENCH_*.json artifacts themselves, which this very pipeline rewrites
// mid-run (a bench run must not flag its own output as provenance drift).
func gitDirty() bool {
	err := exec.Command("git", "diff", "--quiet", "HEAD", "--", ":(exclude)BENCH_*.json").Run()
	if err == nil {
		return false
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) && ee.ExitCode() == 1 {
		return true
	}
	return false // git unavailable or odd state: stamp is best-effort
}
