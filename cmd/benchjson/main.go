// Command benchjson converts `go test -bench` output on stdin into a JSON
// map from benchmark name to its measured figures, for the BENCH_phy.json
// trajectory the repo tracks across PRs. A "_meta" entry records the git
// commit the numbers were measured at (omitted when git is unavailable);
// readers decoding into map[string]Result simply see it as a zero Result.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_phy.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result holds the figures of one benchmark line.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// gomaxprocsSuffix strips the trailing "-N" the testing package appends to
// benchmark names, so entries stay stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var r Result
		// Fields after the iteration count come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if r.NsPerOp > 0 {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := make(map[string]any, len(results)+1)
	for name, r := range results {
		out[name] = r
	}
	if sha := gitSHA(); sha != "" {
		out["_meta"] = map[string]string{"git_sha": sha}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gitSHA returns the current commit hash, or "" when not in a git checkout
// (the stamp is best-effort provenance, never a failure).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
