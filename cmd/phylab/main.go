// Command phylab drives the sample-level OFDM baseband (the WARP
// substitute) directly: it measures BER/PER/EVM for a configurable link and
// can sweep SNR or transmit power, reproducing the raw measurements behind
// Figs 1–4 at any Monte-Carlo depth (the paper transmits 9000 × 1500 B
// packets per point).
//
// Usage:
//
//	phylab [-width 20|40] [-mod QPSK|BPSK|DQPSK|16QAM|64QAM]
//	       [-mode stbc|siso] [-tx dBm] [-pathloss dB]
//	       [-packets N] [-bytes N] [-sweep none|tx|snr] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"acorn/internal/baseband"
	"acorn/internal/phy"
	"acorn/internal/profiling"
	"acorn/internal/simrun"
	"acorn/internal/spectrum"
	"acorn/internal/units"
)

func main() {
	width := flag.Int("width", 20, "channel width in MHz (20 or 40)")
	mod := flag.String("mod", "QPSK", "modulation: BPSK, QPSK, DQPSK, 16QAM, 64QAM")
	mode := flag.String("mode", "stbc", "spatial mode: stbc (2x2 Alamouti) or siso")
	tx := flag.Float64("tx", 15, "transmit power (dBm)")
	pathloss := flag.Float64("pathloss", 0, "path loss (dB); 0 = derive from -snr")
	snr := flag.Float64("snr", 6, "target analytic per-subcarrier SNR when -pathloss is 0")
	packets := flag.Int("packets", 500, "packets per measurement")
	bytes := flag.Int("bytes", 1500, "payload size")
	sweep := flag.String("sweep", "none", "sweep: none, tx (0..25 dBm), snr (0..12 dB)")
	fading := flag.String("fading", "none", "fading: none, flat, rician")
	seed := flag.Int64("seed", 1, "RNG seed")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS); results are worker-count independent")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	w := spectrum.Width20
	if *width == 40 {
		w = spectrum.Width40
	} else if *width != 20 {
		log.Fatalf("phylab: width must be 20 or 40, got %d", *width)
	}
	modulation, err := parseModulation(*mod)
	if err != nil {
		log.Fatal(err)
	}
	txMode := baseband.ModeSTBC
	if strings.EqualFold(*mode, "siso") {
		txMode = baseband.ModeSISO
	}
	fade, err := parseFading(*fading)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(txPower, plDB float64) *baseband.Measurement {
		return simrun.RunPoint(simrun.Point{
			Seed:        *seed,
			Packets:     *packets,
			PacketBytes: *bytes,
			Make: func(shardSeed int64) *baseband.Link {
				ch := &baseband.Channel{PathLoss: units.DB(plDB), Fading: fade}
				return baseband.NewLink(baseband.NewChainConfig(w), modulation, txMode, units.DBm(txPower), ch, shardSeed)
			},
		}, simrun.Options{Workers: *workers})
	}
	pl := *pathloss
	if pl == 0 {
		pl = pathLossFor(units.DBm(*tx), *snr, w)
	}

	switch *sweep {
	case "none":
		m := measure(*tx, pl)
		fmt.Printf("width=%v mod=%v mode=%v tx=%.1f dBm pathloss=%.1f dB\n", w, modulation, txMode, *tx, pl)
		fmt.Printf("packets=%d bits=%d\n", m.Packets, m.Bits)
		fmt.Printf("BER=%.3g PER=%.3g EVM=%.4f measuredSNR=%.2f dB\n",
			m.BER(), m.PER(), m.EVM(), m.MeasuredSNRdB())
	case "tx":
		fmt.Println("tx(dBm)      BER          PER")
		for t := 0.0; t <= 25; t += 2.5 {
			m := measure(t, pl)
			fmt.Printf("%-8.1f %12.4g %12.4g\n", t, m.BER(), m.PER())
		}
	case "snr":
		fmt.Println("targetSNR(dB) measSNR(dB)  BER          theoryBER")
		for s := 0.0; s <= 12; s += 1.5 {
			m := measure(*tx, pathLossFor(units.DBm(*tx), s, w))
			fmt.Printf("%-13.1f %-12.2f %12.4g %12.4g\n",
				s, m.MeasuredSNRdB(), m.BER(), phy.UncodedBER(modulation, units.DB(m.MeasuredSNRdB())))
		}
	default:
		log.Fatalf("phylab: unknown sweep %q", *sweep)
	}
}

func parseModulation(s string) (phy.Modulation, error) {
	switch strings.ToUpper(s) {
	case "BPSK":
		return phy.BPSK, nil
	case "QPSK":
		return phy.QPSK, nil
	case "DQPSK":
		return phy.DQPSK, nil
	case "16QAM", "QAM16":
		return phy.QAM16, nil
	case "64QAM", "QAM64":
		return phy.QAM64, nil
	}
	return 0, fmt.Errorf("phylab: unknown modulation %q", s)
}

func parseFading(s string) (baseband.FadingModel, error) {
	switch strings.ToLower(s) {
	case "none":
		return baseband.FadingNone, nil
	case "flat":
		return baseband.FadingFlat, nil
	case "rician":
		return baseband.FadingRician, nil
	}
	return 0, fmt.Errorf("phylab: unknown fading model %q", s)
}

func pathLossFor(tx units.DBm, targetSNR float64, w spectrum.Width) float64 {
	perSC := phy.SubcarrierTxPower(tx, w)
	return float64(perSC) - targetSNR - float64(phy.SubcarrierNoiseFloor())
}
