# ACORN reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race bench cover experiments clean

# The default check path race-checks everything: the control plane is
# deliberately concurrent (heartbeats, reconnect supervisors, chaos tests),
# so plain `make` must catch data races, not just failures.
all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every paper artifact once and
# measures each experiment.
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table, figure, ablation and extension.
experiments:
	$(GO) run ./cmd/experiments all

clean:
	rm -f cover.out test_output.txt bench_output.txt
