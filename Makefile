# ACORN reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race bench bench-smoke obs-smoke cover experiments clean

# The default check path race-checks everything: the control plane is
# deliberately concurrent (heartbeats, reconnect supervisors, chaos tests),
# so plain `make` must catch data races, not just failures.
all: build vet test race bench-smoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every paper artifact once and
# measures each experiment, recording the trajectory in BENCH_phy.json.
bench:
	$(GO) test -bench=. -benchmem -count=1 ./... | tee bench_output.txt
	$(GO) run ./cmd/benchjson < bench_output.txt > BENCH_phy.json

# One-iteration smoke pass over every benchmark: catches bit-rot in the
# benchmark code without paying for real measurements.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=1 ./... > /dev/null

# Boots acornd with -obs-addr and asserts /metrics and /healthz serve the
# expected convergence metrics. OBS_SMOKE_PORT overrides the port.
obs-smoke:
	sh scripts/obs_smoke.sh

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table, figure, ablation and extension.
experiments:
	$(GO) run ./cmd/experiments all

clean:
	rm -f cover.out test_output.txt bench_output.txt
