# ACORN reproduction — build/test/bench entry points.

GO ?= go

# Scratch directory for bench output and pinned tools (gitignored).
BUILD_DIR ?= build

# staticcheck is pinned so `make all` means the same thing on every
# machine; the target below resolves a PATH install, a previously pinned
# build, or a fresh module fetch, in that order.
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build vet staticcheck test race bench bench-smoke alloc-bench-smoke assoc-bench-smoke shard-bench-smoke stream-bench-smoke trace-bench-smoke build-bench-smoke fleet-bench fleet-bench-smoke stream-chaos obs-smoke cover experiments clean

# The default check path race-checks everything: the control plane is
# deliberately concurrent (heartbeats, reconnect supervisors, chaos tests),
# so plain `make` must catch data races, not just failures.
all: build vet staticcheck test race bench-smoke alloc-bench-smoke assoc-bench-smoke shard-bench-smoke stream-bench-smoke trace-bench-smoke build-bench-smoke fleet-bench-smoke stream-chaos obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Resolution order: a staticcheck already on
# PATH, the pinned copy under $(BUILD_DIR)/bin, or a fresh pinned install
# (needs network for the module fetch). Offline with no binary available
# the target degrades to a loud skip rather than failing `make all`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif [ -x $(BUILD_DIR)/bin/staticcheck ]; then \
		$(BUILD_DIR)/bin/staticcheck ./... ; \
	elif GOBIN=$(abspath $(BUILD_DIR)/bin) $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) 2>/dev/null; then \
		$(BUILD_DIR)/bin/staticcheck ./... ; \
	else \
		echo "staticcheck: no binary on PATH and module fetch unavailable; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness: regenerates every paper artifact once and
# measures each experiment, recording the trajectory in BENCH_phy.json and
# the allocator-scaling figures (reference vs incremental, with the 200-AP
# speedup ratio derived from the same run) in BENCH_alloc.json.
bench:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -bench=. -benchmem -count=1 ./... | tee $(BUILD_DIR)/bench_output.txt
	$(GO) run ./cmd/benchjson < $(BUILD_DIR)/bench_output.txt > BENCH_phy.json
	$(GO) run ./cmd/benchjson -match '^BenchmarkAlloc' \
		-derive alloc_speedup_200ap=BenchmarkAllocReference200AP/BenchmarkAllocIncremental200AP \
		-derive alloc_speedup_50ap=BenchmarkAllocReference50AP/BenchmarkAllocIncremental50AP \
		< $(BUILD_DIR)/bench_output.txt > BENCH_alloc.json
	$(GO) run ./cmd/benchjson -match '^BenchmarkAssoc' \
		-derive assoc_speedup_50ap=BenchmarkAssocReferenceSweep50AP/BenchmarkAssocIncrementalSweep50AP \
		< $(BUILD_DIR)/bench_output.txt > BENCH_assoc.json
	$(GO) run ./cmd/benchjson -match 'BenchmarkStreamEvents|Goodput' \
		-derive stream_goodput_ratio=BenchmarkStreamGoodput/BenchmarkPeriodicGoodput:goodput_mbps \
		< $(BUILD_DIR)/bench_output.txt > BENCH_stream.json
	$(GO) run ./cmd/benchjson -match '^BenchmarkShard' \
		-derive shard_speedup_2000ap=BenchmarkShardSolve2000AP1W/BenchmarkShardSolve2000AP8W \
		< $(BUILD_DIR)/bench_output.txt > BENCH_shard.json
	$(GO) run ./cmd/benchjson -match 'BenchmarkStreamTraced' \
		-derive trace_overhead=BenchmarkStreamTracedOn/BenchmarkStreamTracedOff \
		< $(BUILD_DIR)/bench_output.txt > BENCH_trace.json
	$(GO) run ./cmd/benchjson -match '^BenchmarkGraphBuild' \
		-derive build_speedup_2000ap=BenchmarkGraphBuildFullScan2000AP/BenchmarkGraphBuildIndexed2000AP \
		< $(BUILD_DIR)/bench_output.txt > BENCH_build.json
	$(GO) run ./cmd/benchjson -match 'BenchmarkFleet|BenchmarkServerPush' \
		-derive fleet_wire_ratio_v1_v2=BenchmarkFleetWireV1/BenchmarkFleetWireV2:bytes_on_wire \
		-derive push_alloc_ratio_v1_v2=BenchmarkServerPushV1/BenchmarkServerPushV2:allocs_per_push_batch \
		< $(BUILD_DIR)/bench_output.txt > BENCH_fleet.json

# One-iteration smoke pass over every benchmark: catches bit-rot in the
# benchmark code without paying for real measurements. -short elides the
# full-sweep reference benchmarks at scale (minutes per iteration).
bench-smoke:
	$(GO) test -short -bench=. -benchmem -benchtime=1x -count=1 ./... > /dev/null

# Smoke the allocator scale harness specifically: one iteration of every
# BenchmarkAlloc* the short mode allows, plus the 200-AP golden replay.
alloc-bench-smoke:
	$(GO) test -short -run 'TestAlloc200APGolden' -bench '^BenchmarkAlloc' \
		-benchtime=1x -count=1 ./internal/core/ > /dev/null

# Smoke the association scale harness: the churn-equivalence and golden
# suites plus one iteration of every BenchmarkAssoc* short mode allows
# (the full-sweep reference benchmark is elided; it takes minutes).
assoc-bench-smoke:
	$(GO) test -short -run 'TestAssoc(ChurnGolden|SweepWorkersDeterminism)' \
		-bench '^BenchmarkAssoc' -benchtime=1x -count=1 ./internal/core/ > /dev/null

# Smoke the component-sharding harness: the determinism/oracle/partition
# suites and the campus fallback regression, plus one iteration of the
# sharded 2000-AP benchmark pair (the unsharded baseline is elided by
# -short; real numbers come from `bench`).
shard-bench-smoke:
	$(GO) test -short -run 'TestContentionComponents|TestAllocSharded|TestAllocWideBandGolden' \
		-bench '^BenchmarkShard' -benchtime=1x -count=1 ./internal/core/ > /dev/null

# Smoke the streaming controller harness: one iteration of the event-rate
# and paired goodput benchmarks, piped through benchjson with the
# goodput-vs-periodic derivation so the whole BENCH_stream.json pipeline is
# exercised (output goes to a scratch file — real numbers come from `bench`).
stream-bench-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run '^$$' -bench 'BenchmarkStreamEvents|Goodput' \
		-benchtime=1x -count=1 ./internal/core/ ./internal/dynamic/ | tee $(BUILD_DIR)/stream_bench_smoke.txt > /dev/null
	$(GO) run ./cmd/benchjson -match 'BenchmarkStreamEvents|Goodput' \
		-derive stream_goodput_ratio=BenchmarkStreamGoodput/BenchmarkPeriodicGoodput:goodput_mbps \
		< $(BUILD_DIR)/stream_bench_smoke.txt > /dev/null
	rm -f $(BUILD_DIR)/stream_bench_smoke.txt

# Smoke the tracing-overhead harness: one iteration of the traced
# benchmark pair (identical event mix, tracing off vs every-event), piped
# through benchjson with the On/Off overhead derivation so the whole
# BENCH_trace.json pipeline is exercised. Real numbers come from `bench`,
# which regenerates the artifact from full-length runs.
trace-bench-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run '^$$' -bench 'BenchmarkStreamTraced' -benchmem \
		-benchtime=1x -count=1 ./internal/core/ | tee $(BUILD_DIR)/trace_bench_smoke.txt > /dev/null
	$(GO) run ./cmd/benchjson -match 'BenchmarkStreamTraced' \
		-derive trace_overhead=BenchmarkStreamTracedOn/BenchmarkStreamTracedOff \
		< $(BUILD_DIR)/trace_bench_smoke.txt > BENCH_trace.json
	rm -f $(BUILD_DIR)/trace_bench_smoke.txt

# Smoke the spatial-index graph-build harness: the equivalence and churn
# suites, plus one iteration of the indexed/full-scan benchmark pair piped
# through benchjson with the speedup derivation so the whole
# BENCH_build.json pipeline is exercised per build. Real numbers come from
# `bench`, which regenerates the artifact from full-length runs.
build-bench-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run 'TestSpatial|TestPartition|TestClientChurn' \
		-count=1 ./internal/core/ > /dev/null
	$(GO) test -run '^$$' -bench 'BenchmarkGraphBuild' \
		-benchtime=1x -count=1 ./internal/core/ | tee $(BUILD_DIR)/build_bench_smoke.txt > /dev/null
	$(GO) run ./cmd/benchjson -match '^BenchmarkGraphBuild' \
		-derive build_speedup_2000ap=BenchmarkGraphBuildFullScan2000AP/BenchmarkGraphBuildIndexed2000AP \
		< $(BUILD_DIR)/build_bench_smoke.txt > BENCH_build.json
	rm -f $(BUILD_DIR)/build_bench_smoke.txt

# Regenerate BENCH_fleet.json from real fleet runs: the 10k-agent
# convergence headline (minutes on one core), the fixed-profile wire pair
# whose bytes-on-wire ratio is the v1-vs-v2 framing win, and the server
# push pair whose per-batch allocation ratio shows the outbox's zero-alloc
# v2 path. Both ratios are derived in the same run.
fleet-bench:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run '^$$' -bench 'BenchmarkFleet|BenchmarkServerPush' -benchmem \
		-benchtime=1x -count=1 -timeout 60m ./internal/ctlnet/ ./internal/fleetsim/ \
		| tee $(BUILD_DIR)/fleet_bench.txt
	$(GO) run ./cmd/benchjson -match 'BenchmarkFleet|BenchmarkServerPush' \
		-derive fleet_wire_ratio_v1_v2=BenchmarkFleetWireV1/BenchmarkFleetWireV2:bytes_on_wire \
		-derive push_alloc_ratio_v1_v2=BenchmarkServerPushV1/BenchmarkServerPushV2:allocs_per_push_batch \
		< $(BUILD_DIR)/fleet_bench.txt > BENCH_fleet.json
	rm -f $(BUILD_DIR)/fleet_bench.txt

# Smoke the fleet harness: the 200-agent convergence test, one -short
# iteration of the wire and push benchmark pairs, and the full benchjson
# derive pipeline into a scratch file whose schema is asserted (the
# committed BENCH_fleet.json comes from `fleet-bench`, not from here).
fleet-bench-smoke:
	@mkdir -p $(BUILD_DIR)
	$(GO) test -run 'TestFleetConverges$$' -count=1 ./internal/fleetsim/ > /dev/null
	$(GO) test -short -run '^$$' -bench 'BenchmarkFleetWire|BenchmarkServerPush' -benchmem \
		-benchtime=1x -count=1 ./internal/ctlnet/ ./internal/fleetsim/ \
		| tee $(BUILD_DIR)/fleet_bench_smoke.txt > /dev/null
	$(GO) run ./cmd/benchjson -match 'BenchmarkFleet|BenchmarkServerPush' \
		-derive fleet_wire_ratio_v1_v2=BenchmarkFleetWireV1/BenchmarkFleetWireV2:bytes_on_wire \
		-derive push_alloc_ratio_v1_v2=BenchmarkServerPushV1/BenchmarkServerPushV2:allocs_per_push_batch \
		< $(BUILD_DIR)/fleet_bench_smoke.txt > $(BUILD_DIR)/fleet_bench_smoke.json
	@grep -q fleet_wire_ratio_v1_v2 $(BUILD_DIR)/fleet_bench_smoke.json || \
		{ echo "fleet-bench-smoke: wire ratio missing from benchjson output"; exit 1; }
	@grep -q push_alloc_ratio_v1_v2 $(BUILD_DIR)/fleet_bench_smoke.json || \
		{ echo "fleet-bench-smoke: alloc ratio missing from benchjson output"; exit 1; }
	rm -f $(BUILD_DIR)/fleet_bench_smoke.txt $(BUILD_DIR)/fleet_bench_smoke.json

# Chaos suite, short mode, under the race detector: connection resets,
# latency/jitter, short writes and report storms against the streaming
# server, asserting convergence and the per-AP switch-rate bound.
stream-chaos:
	$(GO) test -race -short -count=1 \
		-run 'TestStreamChaosStorm|TestChaosConvergence|TestReconnectReplayStaysQuarantined' \
		./internal/ctlnet/ > /dev/null

# Boots acornd with -obs-addr and asserts /metrics and /healthz serve the
# expected convergence metrics. OBS_SMOKE_PORT overrides the port.
obs-smoke:
	sh scripts/obs_smoke.sh

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table, figure, ablation and extension.
experiments:
	$(GO) run ./cmd/experiments all

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf $(BUILD_DIR)
